/**
 * @file
 * Miss Status Handling Register file.
 *
 * Classic CAM-style MSHRs used by the on-chip caches. The paper's point
 * is that these are too expensive to scale to the 100s of outstanding
 * DRAM-cache misses, which is why AstriFlash moves that bookkeeping into
 * the in-DRAM Miss Status Row (core/miss_status_row.hh). This model
 * provides the on-chip structure plus the occupancy statistics needed to
 * demonstrate the contrast.
 */

#ifndef ASTRIFLASH_MEM_MSHR_HH
#define ASTRIFLASH_MEM_MSHR_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/invariant.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

#include "address.hh"

namespace astriflash::mem {

/** Outcome of an MSHR allocation attempt. */
enum class MshrAlloc {
    New,    ///< A fresh entry was allocated for this line.
    Merged, ///< An entry for this line existed; request was merged.
    Full,   ///< No free entry; the cache must block.
};

/** Fixed-capacity MSHR file keyed by line (block) number. */
class MshrFile
{
  public:
    struct Stats {
        sim::Counter allocations;
        sim::Counter merges;
        sim::Counter fullStalls;
        sim::Counter frees;
        sim::Counter heldTicks;  ///< Total entry-hold time.
        sim::Histogram holdTime; ///< Per-entry allocate-to-release.
        std::uint64_t peakOccupancy = 0;
    };

    /**
     * @param name     Instance name.
     * @param entries  Number of MSHR entries (CAM size).
     * @param line_size Granularity of request coalescing.
     */
    MshrFile(std::string name, std::uint32_t entries,
             std::uint64_t line_size = kBlockSize);

    /**
     * Try to allocate (or merge into) an entry for @p addr.
     * @param now  Allocation tick; a fresh entry records it so the
     *             release can account the hold time. The paper's
     *             argument (§IV-B) is exactly this interval: a miss
     *             *response* frees the entry in nanoseconds, while
     *             holding it to fill completion pins it for the whole
     *             flash access.
     */
    MshrAlloc allocate(Addr addr, sim::Ticks now = 0);

    /**
     * Release the entry for @p addr.
     * @param now  Release tick (may be a declared future tick: the
     *             miss-response time); hold-time stats cover
     *             now - allocation tick.
     * @return Number of merged requests that were waiting (>=1), or 0
     *         if no entry existed.
     */
    std::uint32_t release(Addr addr, sim::Ticks now = 0);

    /** True if an entry for @p addr is outstanding. */
    bool contains(Addr addr) const;

    /** Current number of live entries. */
    std::uint32_t occupancy() const
    {
        return static_cast<std::uint32_t>(table.size());
    }

    /** True when every entry is in use. */
    bool full() const { return table.size() >= capacity; }

    std::uint32_t entries() const { return capacity; }
    const Stats &stats() const { return statsData; }

    /** Register this MSHR file's stats into @p reg. */
    void
    regStats(sim::StatRegistry &reg) const
    {
        reg.registerCounter("allocations", &statsData.allocations,
                            "fresh MSHR entries allocated");
        reg.registerCounter("merges", &statsData.merges,
                            "requests merged onto an existing entry");
        reg.registerCounter("full_stalls", &statsData.fullStalls,
                            "allocation attempts rejected by a full file");
        reg.registerCounter("frees", &statsData.frees,
                            "entries released at fill completion");
        reg.registerCounter("held_ticks", &statsData.heldTicks,
                            "total allocate-to-release hold time");
        reg.registerHistogram("hold_time", &statsData.holdTime,
                              "per-entry hold time in ticks");
        reg.registerUint("peak_occupancy", &statsData.peakOccupancy,
                         "maximum live entries over the run");
    }

    /**
     * Audit the CAM: bounded occupancy, line-aligned keys with at least
     * one waiter each, and allocations == frees + occupancy.
     */
    void
    checkInvariants(sim::InvariantChecker &chk) const
    {
        SIM_INVARIANT_MSG(chk, table.size() <= capacity,
                          "%zu entries exceed the %u-entry CAM",
                          table.size(), capacity);
        // Audit-only, order-insensitive walk (baselined AF015).
        for (const auto &[bn, entry] : table) {
            // A BlockNum key cannot be misaligned by construction;
            // the remaining invariant is that every entry has at
            // least one waiter.
            SIM_INVARIANT_MSG(chk, entry.waiters >= 1,
                              "entry %llx has no waiters",
                              static_cast<unsigned long long>(
                                  blockAddr(bn, line)));
        }
        SIM_INVARIANT_MSG(
            chk,
            statsData.allocations.value() ==
                statsData.frees.value() + table.size(),
            "MSHR conservation: %llu allocs != %llu frees + %zu live",
            static_cast<unsigned long long>(
                statsData.allocations.value()),
            static_cast<unsigned long long>(statsData.frees.value()),
            table.size());
        SIM_INVARIANT(chk, statsData.peakOccupancy >= table.size());
        // Every free samples the hold-time histogram exactly once.
        SIM_INVARIANT_MSG(chk,
                          statsData.holdTime.count() ==
                              statsData.frees.value(),
                          "%llu frees but %llu hold-time samples",
                          static_cast<unsigned long long>(
                              statsData.frees.value()),
                          static_cast<unsigned long long>(
                              statsData.holdTime.count()));
    }

  private:
    struct Entry {
        std::uint32_t waiters = 0;
        sim::Ticks allocatedAt = 0;
    };

    std::string fileName;
    std::uint32_t capacity;
    std::uint64_t line;
    std::unordered_map<BlockNum, Entry> table;
    Stats statsData;
};

} // namespace astriflash::mem

#endif // ASTRIFLASH_MEM_MSHR_HH
