#include "mshr.hh"

#include "sim/logging.hh"

namespace astriflash::mem {

MshrFile::MshrFile(std::string name, std::uint32_t entries,
                   std::uint64_t line_size)
    : fileName(std::move(name)), capacity(entries), line(line_size)
{
    if (entries == 0)
        ASTRI_FATAL("%s: MSHR file needs at least one entry",
                    fileName.c_str());
    if (!isPowerOfTwo(line_size))
        ASTRI_FATAL("%s: line size must be a power of two",
                    fileName.c_str());
}

MshrAlloc
MshrFile::allocate(Addr addr, sim::Ticks now)
{
    const BlockNum key = blockNumber(addr, line);
    if (auto it = table.find(key); it != table.end()) {
        ++it->second.waiters;
        statsData.merges.inc();
        return MshrAlloc::Merged;
    }
    if (table.size() >= capacity) {
        statsData.fullStalls.inc();
        return MshrAlloc::Full;
    }
    table.emplace(key, Entry{1, now});
    statsData.allocations.inc();
    if (table.size() > statsData.peakOccupancy)
        statsData.peakOccupancy = table.size();
    return MshrAlloc::New;
}

std::uint32_t
MshrFile::release(Addr addr, sim::Ticks now)
{
    auto it = table.find(blockNumber(addr, line));
    if (it == table.end())
        return 0;
    const std::uint32_t waiters = it->second.waiters;
    const sim::Ticks held =
        now > it->second.allocatedAt ? now - it->second.allocatedAt : 0;
    table.erase(it);
    statsData.frees.inc();
    statsData.heldTicks.inc(held);
    statsData.holdTime.sample(held);
    return waiters;
}

bool
MshrFile::contains(Addr addr) const
{
    return table.count(blockNumber(addr, line)) != 0;
}

} // namespace astriflash::mem
