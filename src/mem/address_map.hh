/**
 * @file
 * Physical address map: PCIe BAR flash window + partitioned DRAM.
 *
 * Mirrors §IV-A of the paper: the SSD's Base Address Registers expose
 * flash as a physical address range ("flash BAR"), while DRAM is split
 * Knights-Landing-style into a flat partition the OS uses directly
 * (page tables live here under DRAM partitioning) and a cached
 * partition that backs the flash BAR range.
 */

#ifndef ASTRIFLASH_MEM_ADDRESS_MAP_HH
#define ASTRIFLASH_MEM_ADDRESS_MAP_HH

#include <cstdint>

#include "address.hh"
#include "flash/flash_types.hh"

namespace astriflash::mem {

/** Where a physical address routes. */
enum class AddressSpace {
    DramFlat,    ///< Flat DRAM partition (OS-managed, page tables).
    FlashCached, ///< Flash BAR range served via the DRAM cache.
    Invalid,     ///< Outside every configured range.
};

/** A half-open [base, base+size) physical range. */
struct AddrRange {
    Addr base = 0;
    std::uint64_t size = 0;

    bool
    contains(Addr a) const
    {
        return a >= base && a - base < size;
    }

    Addr end() const { return base + size; }
};

/** System physical address map. */
class AddressMap
{
  public:
    /**
     * @param flat_dram_size   Bytes of flat (OS-visible) DRAM.
     * @param flash_size       Bytes exposed by the flash BAR.
     *
     * Layout: flat DRAM at PA 0; flash BAR above it, aligned up to
     * 1 GB as firmware typically places device windows.
     */
    AddressMap(std::uint64_t flat_dram_size, std::uint64_t flash_size)
    {
        constexpr std::uint64_t kBarAlign = std::uint64_t{1} << 30;
        flat = {0, flat_dram_size};
        flash = {alignUp(flat.end(), kBarAlign), flash_size};
    }

    /** Classify a physical address. */
    AddressSpace
    route(Addr a) const
    {
        if (flat.contains(a))
            return AddressSpace::DramFlat;
        if (flash.contains(a))
            return AddressSpace::FlashCached;
        return AddressSpace::Invalid;
    }

    /** Flash logical page number for a flash-BAR address. */
    flash::Lpn
    flashPage(Addr a) const
    {
        return flash::Lpn((a - flash.base) / kPageSize);
    }

    /** Physical address of flash logical page @p lpn. */
    Addr
    flashPageAddr(flash::Lpn lpn) const
    {
        // aflint-allow(AF011): sanctioned Lpn -> byte-address
        // conversion (inverse of flashPage).
        return flash.base + lpn.raw() * kPageSize;
    }

    const AddrRange &flatRange() const { return flat; }
    const AddrRange &flashRange() const { return flash; }

  private:
    AddrRange flat;
    AddrRange flash;
};

} // namespace astriflash::mem

#endif // ASTRIFLASH_MEM_ADDRESS_MAP_HH
