/**
 * @file
 * A real cooperative user-level threading library (§IV-D).
 *
 * This is the software artifact AstriFlash's core-side design relies
 * on: worker threads with private stacks, ~100 ns context switches,
 * and a priority scheduler with aging over a bounded pending queue.
 * In hardware the switch is triggered by the DRAM-cache miss signal;
 * in this library the equivalent yield point is blockOn(key), which
 * parks the calling thread until notify(key) — exactly how the
 * simulator models it, and how an application running on AstriFlash
 * hardware would behave.
 *
 * Context switching uses POSIX ucontext; stacks are heap-allocated.
 * The library is single-OS-thread by design (cooperative scheduling
 * needs no locks), mirroring the one-scheduler-per-core model.
 */

#ifndef ASTRIFLASH_UTHREAD_UTHREAD_HH
#define ASTRIFLASH_UTHREAD_UTHREAD_HH

#include <ucontext.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/invariant.hh"

namespace astriflash::uthread {

/** Scheduling policy (mirrors core::SchedPolicy). */
enum class Policy {
    PriorityAging, ///< New jobs first, aged pending jobs promoted.
    Fifo,          ///< New jobs always first (the noPS ablation).
};

/** Scheduler configuration. */
struct Config {
    Policy policy = Policy::PriorityAging;
    std::size_t stackBytes = 64 * 1024;
    std::uint32_t pendingCap = 64;
    /** Aging threshold: a pending thread older than this runs first
     *  (the simulator derives it from the flash-response EMA; the
     *  library takes it as a parameter). */
    std::chrono::nanoseconds agingThreshold{50000};
};

/** Cooperative user-level thread scheduler. */
class UScheduler
{
  public:
    struct Stats {
        std::uint64_t spawned = 0;
        std::uint64_t switches = 0;
        std::uint64_t blocks = 0;
        std::uint64_t notifies = 0;
        std::uint64_t agingPromotions = 0;
        std::uint64_t completed = 0;
        std::uint64_t pendingOverflows = 0;
    };

    explicit UScheduler(const Config &config = Config{});
    ~UScheduler();

    UScheduler(const UScheduler &) = delete;
    UScheduler &operator=(const UScheduler &) = delete;

    /** Create a new thread running @p fn. @return thread id. */
    std::uint64_t spawn(std::function<void()> fn);

    /**
     * Run until every spawned thread has finished. Must be called
     * from the hosting OS thread, not from inside a worker.
     */
    void run();

    /**
     * Run at most @p max_dispatches scheduling decisions, then
     * return — the host loop's quantum. Lets an external "backside
     * controller" interleave notify() calls with execution (the
     * queue-pair pattern of §IV-D2).
     * @return the number of threads dispatched (0 = nothing
     *         runnable; the caller should produce a notification or
     *         stop).
     */
    std::uint32_t runSlice(std::uint32_t max_dispatches);

    /**
     * Cooperative yield from inside a worker: reschedule and let the
     * policy pick the next thread.
     */
    void yield();

    /**
     * Park the calling thread until notify(@p key) — the library
     * analog of the switch-on-miss path. If the pending queue is
     * full, the scheduler first drains the oldest pending thread
     * (§IV-D1's overflow rule).
     */
    void blockOn(std::uint64_t key);

    /** Wake every thread blocked on @p key. Callable from workers or
     *  from outside run() (before/after scheduling quanta). */
    void notify(std::uint64_t key);

    /** Id of the currently running thread (0 = scheduler). */
    std::uint64_t currentId() const;

    /** True while called from inside a worker thread. */
    bool inWorker() const { return running != nullptr; }

    std::uint32_t pendingCount() const
    {
        return static_cast<std::uint32_t>(pendingBlocked.size() +
                                          pendingReady.size());
    }

    const Stats &stats() const { return statsData; }
    const Config &config() const { return cfg; }

    /**
     * Audit the runqueues (call from the scheduler context, not a
     * worker): every live thread sits in exactly one queue, block
     * keys match queue membership, and the spawn/complete counters
     * agree with the thread table.
     */
    void checkInvariants(sim::InvariantChecker &chk) const;

  private:
    struct Thread {
        std::uint64_t id = 0;
        ucontext_t ctx{};
        std::vector<std::uint8_t> stack;
        std::function<void()> fn;
        bool finished = false;
        std::uint64_t blockKey = 0;
        // This library runs in host time (it is the runtime analog of
        // the simulated scheduler, driven by real callers), so aging
        // legitimately reads the host monotonic clock.
        // aflint-allow-next-line(AF001)
        std::chrono::steady_clock::time_point pendingSince{};
    };

    static void trampoline();

    /** Switch from the scheduler into @p t. */
    void dispatch(Thread *t);

    /** Pick the next runnable thread per the policy. */
    Thread *pickNext();

    Config cfg;
    ucontext_t schedCtx{};
    std::deque<Thread *> newQueue;
    std::deque<Thread *> pendingBlocked;
    std::deque<Thread *> pendingReady;
    std::vector<std::unique_ptr<Thread>> threads;
    Thread *running = nullptr;
    std::uint64_t nextId = 1;
    Stats statsData;
};

} // namespace astriflash::uthread

#endif // ASTRIFLASH_UTHREAD_UTHREAD_HH
