#include "uthread.hh"

#include <unordered_map>

#include "sim/logging.hh"

namespace astriflash::uthread {

namespace {
// The trampoline needs to find its scheduler; makecontext's argument
// passing is int-sized and awkward, so a scoped "current scheduler"
// pointer is the established pattern. Single OS thread by design.
thread_local UScheduler *g_current = nullptr;
} // namespace

UScheduler::UScheduler(const Config &config) : cfg(config)
{
    if (cfg.stackBytes < 16 * 1024)
        ASTRI_FATAL("uthread: stacks below 16 KB are unsafe");
}

UScheduler::~UScheduler() = default;

std::uint64_t
UScheduler::spawn(std::function<void()> fn)
{
    auto t = std::make_unique<Thread>();
    t->id = nextId++;
    t->fn = std::move(fn);
    t->stack.resize(cfg.stackBytes);
    Thread *raw = t.get();
    threads.push_back(std::move(t));
    newQueue.push_back(raw);
    ++statsData.spawned;
    return raw->id;
}

void
UScheduler::trampoline()
{
    UScheduler *self = g_current;
    ASTRI_ASSERT(self && self->running);
    Thread *t = self->running;
    t->fn();
    t->finished = true;
    ++self->statsData.completed;
    // Return to the scheduler; this context is never resumed.
    swapcontext(&t->ctx, &self->schedCtx);
    ASTRI_PANIC("resumed a finished uthread");
}

void
UScheduler::dispatch(Thread *t)
{
    if (t->ctx.uc_stack.ss_sp == nullptr) {
        // First dispatch: materialize the context.
        getcontext(&t->ctx);
        t->ctx.uc_stack.ss_sp = t->stack.data();
        t->ctx.uc_stack.ss_size = t->stack.size();
        t->ctx.uc_link = &schedCtx;
        makecontext(&t->ctx, reinterpret_cast<void (*)()>(&trampoline),
                    0);
    }
    running = t;
    ++statsData.switches;
    swapcontext(&schedCtx, &t->ctx);
    running = nullptr;
}

UScheduler::Thread *
UScheduler::pickNext()
{
    // aflint-allow-next-line(AF001): host-time aging by design
    const auto now = std::chrono::steady_clock::now();
    switch (cfg.policy) {
      case Policy::PriorityAging: {
        if (!pendingReady.empty()) {
            Thread *head = pendingReady.front();
            if (now - head->pendingSince >= cfg.agingThreshold) {
                ++statsData.agingPromotions;
                pendingReady.pop_front();
                return head;
            }
        }
        if (!newQueue.empty()) {
            Thread *t = newQueue.front();
            newQueue.pop_front();
            return t;
        }
        if (!pendingReady.empty()) {
            Thread *t = pendingReady.front();
            pendingReady.pop_front();
            return t;
        }
        return nullptr;
      }
      case Policy::Fifo: {
        if (!newQueue.empty()) {
            Thread *t = newQueue.front();
            newQueue.pop_front();
            return t;
        }
        if (!pendingReady.empty()) {
            Thread *t = pendingReady.front();
            pendingReady.pop_front();
            return t;
        }
        return nullptr;
      }
    }
    return nullptr;
}

std::uint32_t
UScheduler::runSlice(std::uint32_t max_dispatches)
{
    ASTRI_ASSERT_MSG(!inWorker(), "runSlice() called from a worker");
    UScheduler *prev = g_current;
    g_current = this;
    std::uint32_t dispatched = 0;
    while (dispatched < max_dispatches) {
        Thread *next = pickNext();
        if (!next)
            break;
        dispatch(next);
        if (!next->finished && next->blockKey == 0) {
            // Plain yield: back to the new queue (still priority 2 —
            // it has not missed).
            newQueue.push_back(next);
        }
        ++dispatched;
    }
    g_current = prev;
    return dispatched;
}

void
UScheduler::run()
{
    ASTRI_ASSERT_MSG(!inWorker(), "run() called from a worker");
    while (runSlice(~0u) > 0) {
    }
    if (!pendingBlocked.empty()) {
        // Nothing runnable but threads still wait on keys no
        // remaining thread will notify from inside this call: either
        // the host loop will notify and call run()/runSlice() again,
        // or this is the library analog of losing a flash response.
        // Surface it — silent deadlock is the one thing a scheduler
        // must not do.
        ASTRI_WARN("uthread: run() exiting with %zu threads "
                   "blocked on un-notified keys",
                   pendingBlocked.size());
    }
}

void
UScheduler::yield()
{
    ASTRI_ASSERT_MSG(inWorker(), "yield() outside a worker");
    Thread *t = running;
    // Marker state: no block key, no pendingSince -> run() requeues.
    t->blockKey = 0;
    // aflint-allow-next-line(AF001): host-time aging by design
    t->pendingSince = std::chrono::steady_clock::time_point{};
    swapcontext(&t->ctx, &schedCtx);
}

void
UScheduler::blockOn(std::uint64_t key)
{
    ASTRI_ASSERT_MSG(inWorker(), "blockOn() outside a worker");
    ASTRI_ASSERT_MSG(key != 0, "block key 0 is reserved");
    Thread *t = running;
    t->blockKey = key;
    // aflint-allow-next-line(AF001): host-time aging by design
    t->pendingSince = std::chrono::steady_clock::now();
    if (pendingCount() >= cfg.pendingCap)
        ++statsData.pendingOverflows;
    pendingBlocked.push_back(t);
    ++statsData.blocks;
    swapcontext(&t->ctx, &schedCtx);
    // Resumed: key was notified.
    t->blockKey = 0;
    // aflint-allow-next-line(AF001): host-time aging by design
    t->pendingSince = std::chrono::steady_clock::time_point{};
}

void
UScheduler::notify(std::uint64_t key)
{
    ++statsData.notifies;
    for (auto it = pendingBlocked.begin(); it != pendingBlocked.end();) {
        if ((*it)->blockKey == key) {
            pendingReady.push_back(*it);
            it = pendingBlocked.erase(it);
        } else {
            ++it;
        }
    }
}

std::uint64_t
UScheduler::currentId() const
{
    return running ? running->id : 0;
}

void
UScheduler::checkInvariants(sim::InvariantChecker &chk) const
{
    SIM_INVARIANT(chk, statsData.spawned == threads.size());

    std::uint64_t finished = 0;
    for (const auto &t : threads) {
        if (t->finished)
            ++finished;
    }
    SIM_INVARIANT_MSG(chk, finished == statsData.completed,
                      "%llu finished threads but %llu completions",
                      static_cast<unsigned long long>(finished),
                      static_cast<unsigned long long>(
                          statsData.completed));

    // Queue membership: each live thread in exactly one queue, with a
    // block key iff it is (or was) parked on one.
    std::unordered_map<std::uint64_t, int> queued; // keyed by thread id
    auto tally = [&](const std::deque<Thread *> &q, const char *qname,
                     bool want_key) {
        for (const Thread *t : q) {
            if (!SIM_INVARIANT_MSG(chk, t != nullptr,
                                   "%s holds a null thread", qname)) {
                continue;
            }
            SIM_INVARIANT_MSG(chk, !t->finished,
                              "%s holds a finished thread", qname);
            SIM_INVARIANT_MSG(chk, ++queued[t->id] == 1,
                              "thread %llu queued more than once",
                              static_cast<unsigned long long>(
                                  t ? t->id : 0));
            SIM_INVARIANT_MSG(chk, (t->blockKey != 0) == want_key,
                              "%s holds thread %llu with block key "
                              "%llu", qname,
                              static_cast<unsigned long long>(t->id),
                              static_cast<unsigned long long>(
                                  t->blockKey));
            SIM_INVARIANT_MSG(chk, t != running,
                              "running thread %llu is also queued",
                              static_cast<unsigned long long>(t->id));
        }
    };
    tally(newQueue, "new queue", false);
    tally(pendingBlocked, "blocked queue", true);
    tally(pendingReady, "ready queue", true);

    // From the scheduler context every unfinished thread is queued
    // (workers observe themselves mid-dispatch, so only check there).
    if (running == nullptr) {
        SIM_INVARIANT_MSG(
            chk,
            newQueue.size() + pendingBlocked.size() +
                    pendingReady.size() + finished ==
                threads.size(),
            "%zu threads but %zu queued and %llu finished",
            threads.size(),
            newQueue.size() + pendingBlocked.size() +
                pendingReady.size(),
            static_cast<unsigned long long>(finished));
    }
}

} // namespace astriflash::uthread
