/**
 * @file
 * Figure 2: throughput of asynchronous flash access schemes as core
 * count grows — the scalability argument of §II-C.
 *
 * OS demand paging pays ~10 µs of page-fault + context-switch work
 * per miss and serializes TLB shootdowns on a global broadcast, so
 * its per-core throughput *decays* with core count. AstriFlash's
 * hardware miss handling keeps per-core throughput flat and near the
 * no-paging-overhead ideal (DRAM-only).
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

double
perCoreThroughput(SystemKind kind, std::uint32_t cores)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = cores;
    cfg.workloadKind = workload::Kind::Tatp;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = 200 * cores;
    cfg.measureJobs = 1200 * cores;
    System sys(cfg);
    return sys.run().throughputJobsPerSec / cores;
}

} // namespace

int
main()
{
    std::printf("# Figure 2: per-core throughput (jobs/s) vs core "
                "count (TATP)\n");
    std::printf("%-8s %-14s %-14s %-14s %-22s\n", "cores",
                "DRAM-only", "AstriFlash", "OS-Swap",
                "OS-Swap shootdowns/s");
    for (std::uint32_t cores : {1u, 2u, 4u, 8u, 16u}) {
        const double ideal =
            perCoreThroughput(SystemKind::DramOnly, cores);
        const double astri =
            perCoreThroughput(SystemKind::AstriFlash, cores);

        SystemConfig cfg;
        cfg.kind = SystemKind::OsSwap;
        cfg.cores = cores;
        cfg.workloadKind = workload::Kind::Tatp;
        cfg.workload.datasetBytes = 1ull << 30;
        cfg.warmupJobs = 200 * cores;
        cfg.measureJobs = 1200 * cores;
        System sys(cfg);
        const auto r = sys.run();
        const double os_thr = r.throughputJobsPerSec / cores;
        const double sd_rate =
            r.measureTicks
                ? static_cast<double>(r.shootdowns) /
                      sim::toSeconds(r.measureTicks)
                : 0.0;

        std::printf("%-8u %-14.0f %-14.0f %-14.0f %-22.0f\n", cores,
                    ideal, astri, os_thr, sd_rate);
        std::fflush(stdout);
    }
    std::printf("# Expect: AstriFlash tracks DRAM-only; OS-Swap "
                "per-core throughput decays as the shootdown\n"
                "# broadcast serializes a growing miss rate.\n");
    return 0;
}
