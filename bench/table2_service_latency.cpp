/**
 * @file
 * Table II: 99th-percentile *service* latency normalized to the
 * Flash-Sync configuration (the ideal latency when accessing flash).
 *
 * Paper results to reproduce: AstriFlash within a few percent of
 * Flash-Sync (the non-preemptive scheduler only delays a resumed job
 * by the current job's remainder); AstriFlash-noPS ~7x (new jobs
 * starve the pending queue until the overflow rule kicks in); and
 * AstriFlash-noDP ~1.7x (cold page-table walks served from flash).
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

double
runP99Service(SystemKind kind, workload::Kind wl)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = 4;
    cfg.workloadKind = wl;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = 500;
    cfg.measureJobs = 8000;
    System sys(cfg);
    return sys.run().p99ServiceUs;
}

} // namespace

int
main()
{
    const SystemKind kinds[] = {SystemKind::AstriFlash,
                                SystemKind::AstriFlashNoPS,
                                SystemKind::AstriFlashNoDP};
    const workload::Kind wls[] = {workload::Kind::Tatp,
                                  workload::Kind::HashTable,
                                  workload::Kind::Silo};

    std::printf("# Table II: p99 service latency normalized to "
                "Flash-Sync\n");
    std::printf("%-10s %-12s", "workload", "Flash-Sync");
    for (SystemKind k : kinds)
        std::printf(" %-18s", systemKindName(k));
    std::printf("\n");

    double sums[3] = {0, 0, 0};
    for (workload::Kind wl : wls) {
        const double base = runP99Service(SystemKind::FlashSync, wl);
        std::printf("%-10s %-12.2f", workload::kindName(wl), 1.0);
        for (std::size_t i = 0; i < std::size(kinds); ++i) {
            const double norm = runP99Service(kinds[i], wl) / base;
            sums[i] += norm;
            std::printf(" %-18.2f", norm);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-10s %-12.2f", "mean", 1.0);
    for (std::size_t i = 0; i < std::size(kinds); ++i)
        std::printf(" %-18.2f", sums[i] / std::size(wls));
    std::printf("\n");
    return 0;
}
