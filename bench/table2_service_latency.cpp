/**
 * @file
 * Table II: 99th-percentile *service* latency normalized to the
 * Flash-Sync configuration (the ideal latency when accessing flash).
 *
 * Paper results to reproduce: AstriFlash within a few percent of
 * Flash-Sync (the non-preemptive scheduler only delays a resumed job
 * by the current job's remainder); AstriFlash-noPS ~7x (new jobs
 * starve the pending queue until the overflow rule kicks in); and
 * AstriFlash-noDP ~1.7x (cold page-table walks served from flash).
 */

#include <cstdio>
#include <fstream>
#include <functional>
#include <vector>

#include "sim/json.hh"
#include "sim/option_parser.hh"
#include "sim/sweep_runner.hh"

#include "core/fabric_options.hh"
#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

std::uint64_t measure_jobs = 8000;
std::uint32_t n_cores = 4;
FabricOptions fabric;

SystemConfig
cellCfg(SystemKind kind, workload::Kind wl)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = n_cores;
    cfg.workloadKind = wl;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = measure_jobs / 16 + 1;
    cfg.measureJobs = measure_jobs;
    fabric.apply(cfg);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string stats_json;
    std::uint32_t host_jobs = 1;
    sim::OptionParser opts(
        "table2_service_latency",
        "Table II: p99 service latency normalized to Flash-Sync.");
    opts.addUint("measure-jobs", &measure_jobs,
                 "measured jobs per cell");
    opts.addUint32("cores", &n_cores, "simulated cores");
    opts.addUint32("jobs", &host_jobs,
                   "host threads running cells in parallel "
                   "(0 = all hardware threads)");
    opts.addString("stats-json", &stats_json,
                   "write the table as JSON to FILE");
    fabric.addTo(opts);
    opts.parseOrExit(argc, argv);

    const SystemKind kinds[] = {SystemKind::AstriFlash,
                                SystemKind::AstriFlashNoPS,
                                SystemKind::AstriFlashNoDP};
    const workload::Kind wls[] = {workload::Kind::Tatp,
                                  workload::Kind::HashTable,
                                  workload::Kind::Silo};

    // One isolated simulation per cell, Flash-Sync baselines included;
    // the whole table runs as a single parallel batch.
    std::vector<std::function<double()>> tasks;
    for (workload::Kind wl : wls) {
        for (int col = -1;
             col < static_cast<int>(std::size(kinds)); ++col) {
            const SystemKind kind =
                col < 0 ? SystemKind::FlashSync : kinds[col];
            tasks.emplace_back([kind, wl] {
                System sys(cellCfg(kind, wl));
                return sys.run().serviceUs(0.99);
            });
        }
    }
    const sim::SweepRunner runner(host_jobs);
    const std::vector<double> p99 = runner.run(std::move(tasks));

    std::printf("# Table II: p99 service latency normalized to "
                "Flash-Sync\n");
    std::printf("%-10s %-12s", "workload", "Flash-Sync");
    for (SystemKind k : kinds)
        std::printf(" %-18s", systemKindName(k));
    std::printf("\n");

    // rows[w][i]: kinds[i] normalized to Flash-Sync on workload w.
    const std::size_t row_w = std::size(kinds) + 1;
    std::vector<std::vector<double>> rows;
    double sums[3] = {0, 0, 0};
    for (std::size_t r = 0; r < std::size(wls); ++r) {
        const double base = p99[r * row_w];
        std::printf("%-10s %-12.2f", workload::kindName(wls[r]), 1.0);
        rows.emplace_back();
        for (std::size_t i = 0; i < std::size(kinds); ++i) {
            const double norm = p99[r * row_w + 1 + i] / base;
            sums[i] += norm;
            rows.back().push_back(norm);
            std::printf(" %-18.2f", norm);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-10s %-12.2f", "mean", 1.0);
    for (std::size_t i = 0; i < std::size(kinds); ++i)
        std::printf(" %-18.2f", sums[i] / std::size(wls));
    std::printf("\n");

    if (!stats_json.empty()) {
        std::ofstream out(stats_json);
        if (!out) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         stats_json.c_str());
            return 1;
        }
        sim::JsonWriter w(out);
        w.beginObject();
        w.field("benchmark", "table2_service_latency");
        w.field("normalized_to", "flashsync");
        w.key("rows");
        w.beginArray();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            w.beginObject();
            w.field("workload", workload::kindName(wls[r]));
            for (std::size_t i = 0; i < std::size(kinds); ++i)
                w.field(systemKindName(kinds[i]), rows[r][i]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        out << "\n";
    }
    return 0;
}
