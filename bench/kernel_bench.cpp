/**
 * @file
 * Event-kernel and sweep-runner microbenchmark.
 *
 * Measures the simulation kernel's hot path in isolation and in situ:
 *
 *  1. schedule_fire — 2048 self-perpetuating timer chains; every
 *     fired event schedules its successor. Pure heap push/pop plus
 *     callback dispatch at realistic heap depth, no cancellations.
 *  2. schedule_cancel_fire — every fired event schedules a live
 *     successor *and* a far-future decoy, then cancels an older decoy.
 *     Exercises lazy deletion and heap compaction.
 *  3. system_msr_heavy — a closed-loop AstriFlash TATP run (every miss
 *     walks the MSR/pending-queue machinery).
 *  4. system_open_loop — the same system under open-loop Poisson
 *     arrivals at 70% of its closed-loop throughput.
 *
 * Mixes 1–2 also run against a faithful in-binary copy of the legacy
 * kernel (std::function callbacks, std::priority_queue of fat entries,
 * alive/cancelled unordered_set pair) so the speedup of the current
 * kernel is self-measured rather than compared across builds.
 *
 * A second phase times a fig10-style sweep batch at --jobs 1 vs
 * --jobs N on the SweepRunner and verifies the per-cell stats JSON is
 * byte-identical, recording wall-clock speedup and host CPU count.
 *
 * Emits BENCH_kernel.json and BENCH_sweep.json for perf tracking.
 */

// aflint-allow-file(AF001): benchmark harness measures host wall-clock
// time by design; no simulated behavior depends on it.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/option_parser.hh"
#include "sim/sweep_runner.hh"

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/**
 * Faithful copy of the pre-rework kernel: std::function callbacks
 * stored inside fat priority_queue entries, with an alive/cancelled
 * unordered_set pair for lazy deletion. Kept here (not in src/) so the
 * production tree carries exactly one kernel; the benchmark measures
 * both implementations in a single binary.
 */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;

    sim::Ticks curTick() const { return now; }

    std::uint64_t
    schedule(sim::Ticks when, Callback fn, int prio = 0)
    {
        const std::uint64_t id = nextSeq;
        heap.push(Entry{when, prio, nextSeq, id, std::move(fn)});
        alive.insert(id);
        ++nextSeq;
        return id;
    }

    std::uint64_t
    scheduleIn(sim::Ticks delta, Callback fn, int prio = 0)
    {
        return schedule(now + delta, std::move(fn), prio);
    }

    bool
    deschedule(std::uint64_t id)
    {
        if (alive.erase(id) == 0)
            return false;
        cancelled.insert(id);
        return true;
    }

    std::uint64_t
    run()
    {
        std::uint64_t n = 0;
        while (!heap.empty()) {
            if (auto it = cancelled.find(heap.top().id);
                it != cancelled.end()) {
                cancelled.erase(it);
                heap.pop();
                continue;
            }
            Entry e = heap.top();
            heap.pop();
            alive.erase(e.id);
            now = e.when;
            ++executedCount;
            ++n;
            e.fn();
        }
        return n;
    }

    std::uint64_t executed() const { return executedCount; }

  private:
    struct Entry {
        sim::Ticks when;
        int prio;
        std::uint64_t seq;
        std::uint64_t id;
        Callback fn;
    };
    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    sim::Ticks now = 0;
    std::uint64_t nextSeq = 1;
    std::uint64_t executedCount = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    std::unordered_set<std::uint64_t> alive;
    std::unordered_set<std::uint64_t> cancelled;
};

struct MixResult {
    std::uint64_t events = 0;
    double wallSeconds = 0;

    double
    eventsPerSec() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(events) / wallSeconds
                   : 0;
    }
};

constexpr std::uint64_t
lcgNext(std::uint64_t s)
{
    return s * 6364136223846793005ULL + 1442695040888963407ULL;
}

/**
 * Mix 1: @p chains concurrent timer chains, each fired event
 * rescheduling its successor at a pseudo-random small delta until the
 * shared budget runs out. The callable is 32 bytes — inline in the
 * current kernel, a heap allocation per schedule under std::function.
 */
template <typename Q>
MixResult
scheduleFireMix(std::uint64_t total_events)
{
    constexpr int kChains = 2048;
    Q q;
    std::uint64_t fired = 0;

    struct Timer {
        Q *q;
        std::uint64_t *fired;
        std::uint64_t total;
        std::uint64_t state;

        void
        operator()()
        {
            if (++*fired >= total)
                return;
            state = lcgNext(state);
            q->scheduleIn(1 + (state >> 56),
                          Timer{q, fired, total, state});
        }
    };

    const auto t0 = Clock::now();
    for (int i = 0; i < kChains; ++i) {
        q.scheduleIn(sim::Ticks{1} + static_cast<sim::Ticks>(i),
                     Timer{&q, &fired, total_events,
                           0x9e3779b97f4a7c15ULL *
                               static_cast<std::uint64_t>(i + 1)});
    }
    q.run();

    MixResult r;
    r.wallSeconds = secondsSince(t0);
    r.events = q.executed();
    return r;
}

/**
 * Mix 2: every fired event schedules a live successor plus a far-future
 * decoy, and cancels the decoy scheduled two fires earlier — a steady
 * one-cancel-per-fire stream that keeps a tombstone population in the
 * heap (driving the compaction path in the current kernel and the
 * cancelled-set in the legacy one).
 */
template <typename Q>
MixResult
scheduleCancelMix(std::uint64_t total_events)
{
    constexpr int kChains = 64;
    Q q;
    std::uint64_t fired = 0;
    std::vector<std::uint64_t> doomed;
    std::size_t head = 0;
    doomed.reserve(total_events + kChains + 16);

    struct NoOp {
        void operator()() {}
    };

    struct Worker {
        Q *q;
        std::uint64_t *fired;
        std::uint64_t total;
        std::vector<std::uint64_t> *doomed;
        std::size_t *head;
        std::uint64_t state;

        void
        operator()()
        {
            if (++*fired >= total)
                return;
            state = lcgNext(state);
            doomed->push_back(q->scheduleIn(
                sim::Ticks{1000000} + (state >> 44), NoOp{}));
            if (doomed->size() - *head >= 2)
                q->deschedule((*doomed)[(*head)++]);
            q->scheduleIn(1 + (state >> 56),
                          Worker{q, fired, total, doomed, head,
                                 state});
        }
    };

    const auto t0 = Clock::now();
    for (int i = 0; i < kChains; ++i) {
        q.scheduleIn(sim::Ticks{1} + static_cast<sim::Ticks>(i),
                     Worker{&q, &fired, total_events, &doomed, &head,
                            0xd1342543de82ef95ULL *
                                static_cast<std::uint64_t>(i + 1)});
    }
    q.run();
    // Any decoys that survived to the far future fire as no-ops above;
    // executed() therefore counts the same work in both kernels.

    MixResult r;
    r.wallSeconds = secondsSince(t0);
    r.events = q.executed();
    return r;
}

SystemConfig
systemCfg(std::uint64_t measure_jobs)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::AstriFlash;
    cfg.cores = 4;
    cfg.workloadKind = workload::Kind::Tatp;
    cfg.workload.datasetBytes = 1ull << 28;
    cfg.warmupJobs = measure_jobs / 16 + 1;
    cfg.measureJobs = measure_jobs;
    return cfg;
}

/** Closed-loop AstriFlash run; returns kernel events/sec in situ. */
MixResult
systemMix(const SystemConfig &cfg, double *jobs_per_sec = nullptr)
{
    System sys(cfg);
    const auto t0 = Clock::now();
    const RunResults res = sys.run();
    MixResult r;
    r.wallSeconds = secondsSince(t0);
    r.events = sys.eventQueue().executed();
    if (jobs_per_sec)
        *jobs_per_sec = res.throughputJobsPerSec;
    return r;
}

void
printMix(const char *name, const MixResult &cur, const MixResult *legacy)
{
    std::printf("%-22s %12llu events  %8.3f s  %12.0f ev/s",
                name, static_cast<unsigned long long>(cur.events),
                cur.wallSeconds, cur.eventsPerSec());
    if (legacy) {
        std::printf("  (legacy %12.0f ev/s, speedup %.2fx)",
                    legacy->eventsPerSec(),
                    cur.eventsPerSec() / legacy->eventsPerSec());
    }
    std::printf("\n");
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t total_events = 2000000;
    std::uint64_t measure_jobs = 2500;
    std::uint32_t sweep_jobs = 8;
    std::string kernel_out = "BENCH_kernel.json";
    std::string sweep_out = "BENCH_sweep.json";
    bool skip_sweep = false;

    sim::OptionParser opts(
        "kernel_bench",
        "Event-kernel microbenchmark (vs an in-binary legacy kernel) "
        "plus a SweepRunner scaling and determinism check.");
    opts.addUint("events", &total_events,
                 "target fired events per kernel mix");
    opts.addUint("measure-jobs", &measure_jobs,
                 "measured jobs per system run / sweep cell");
    opts.addUint32("jobs", &sweep_jobs,
                   "host threads for the parallel sweep phase "
                   "(0 = all hardware threads)");
    opts.addString("kernel-json", &kernel_out,
                   "write kernel results to FILE");
    opts.addString("sweep-json", &sweep_out,
                   "write sweep results to FILE");
    opts.addFlag("no-sweep", &skip_sweep,
                 "skip the SweepRunner scaling phase");
    opts.parseOrExit(argc, argv);

    const unsigned host_cpus = sim::SweepRunner::hardwareJobs();

    // ---- Phase 1: kernel mixes, current vs legacy ----
    std::printf("# kernel_bench: %llu events/mix, host_cpus=%u\n",
                static_cast<unsigned long long>(total_events),
                host_cpus);

    const MixResult fire_cur =
        scheduleFireMix<sim::EventQueue>(total_events);
    const MixResult fire_leg =
        scheduleFireMix<LegacyEventQueue>(total_events);
    printMix("schedule_fire", fire_cur, &fire_leg);

    const MixResult cancel_cur =
        scheduleCancelMix<sim::EventQueue>(total_events);
    const MixResult cancel_leg =
        scheduleCancelMix<LegacyEventQueue>(total_events);
    printMix("schedule_cancel_fire", cancel_cur, &cancel_leg);

    double closed_jobs_per_sec = 0;
    const MixResult msr =
        systemMix(systemCfg(measure_jobs), &closed_jobs_per_sec);
    printMix("system_msr_heavy", msr, nullptr);

    SystemConfig open_cfg = systemCfg(measure_jobs);
    open_cfg.meanInterarrival = static_cast<sim::Ticks>(
        1e12 / (0.7 * closed_jobs_per_sec));
    const MixResult open = systemMix(open_cfg);
    printMix("system_open_loop", open, nullptr);

    const double speedup_fire =
        fire_cur.eventsPerSec() / fire_leg.eventsPerSec();
    const double speedup_cancel =
        cancel_cur.eventsPerSec() / cancel_leg.eventsPerSec();

    if (!kernel_out.empty()) {
        std::ofstream out(kernel_out);
        if (!out) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         kernel_out.c_str());
            return 1;
        }
        sim::JsonWriter w(out);
        w.beginObject();
        w.field("benchmark", "kernel_bench");
        w.field("host_cpus", static_cast<std::uint64_t>(host_cpus));
        w.field("events_per_mix", total_events);
        w.key("mixes");
        w.beginArray();
        const struct {
            const char *name;
            const MixResult *cur;
            const MixResult *legacy;
        } mixes[] = {
            {"schedule_fire", &fire_cur, &fire_leg},
            {"schedule_cancel_fire", &cancel_cur, &cancel_leg},
            {"system_msr_heavy", &msr, nullptr},
            {"system_open_loop", &open, nullptr},
        };
        for (const auto &m : mixes) {
            w.beginObject();
            w.field("name", m.name);
            w.field("events", m.cur->events);
            w.field("wall_seconds", m.cur->wallSeconds);
            w.field("events_per_sec", m.cur->eventsPerSec());
            if (m.legacy) {
                w.field("legacy_events_per_sec",
                        m.legacy->eventsPerSec());
                w.field("speedup_vs_legacy",
                        m.cur->eventsPerSec() /
                            m.legacy->eventsPerSec());
            }
            w.endObject();
        }
        w.endArray();
        w.field("kernel_speedup_min",
                speedup_fire < speedup_cancel ? speedup_fire
                                              : speedup_cancel);
        w.endObject();
        out << "\n";
        std::printf("# wrote %s\n", kernel_out.c_str());
    }

    if (skip_sweep)
        return 0;

    // ---- Phase 2: SweepRunner scaling + determinism ----
    // A fig10-style batch: 4 load points x {DRAM-only, AstriFlash}
    // under open-loop arrivals. Each cell returns its full stats-tree
    // JSON; the batch runs at --jobs 1 and --jobs N and the dumps must
    // match byte for byte.
    double dram_max = 0;
    {
        SystemConfig cfg = systemCfg(measure_jobs);
        cfg.kind = SystemKind::DramOnly;
        System sys(cfg);
        dram_max = sys.run().throughputJobsPerSec;
    }
    const double targets[] = {0.3, 0.5, 0.65, 0.8};
    const SystemKind kinds[] = {SystemKind::DramOnly,
                                SystemKind::AstriFlash};
    std::vector<std::function<std::string()>> tasks;
    for (double target : targets) {
        const auto gap =
            static_cast<sim::Ticks>(1e12 / (target * dram_max));
        for (SystemKind kind : kinds) {
            SystemConfig cfg = systemCfg(measure_jobs);
            cfg.kind = kind;
            cfg.meanInterarrival = gap;
            tasks.emplace_back([cfg] {
                System sys(cfg);
                sys.run();
                return sys.statsRegistry().dumpJson();
            });
        }
    }

    const auto t_serial = Clock::now();
    const std::vector<std::string> dumps1 =
        sim::SweepRunner(1).run(std::vector(tasks));
    const double wall1 = secondsSince(t_serial);

    // The runner clamps to the host's core count: oversubscribing
    // whole-simulation tasks only measures scheduler noise (the old
    // 0.81x-on-1-CPU artifact this metadata now explains).
    const sim::SweepRunner par(sweep_jobs);
    const auto t_par = Clock::now();
    const std::vector<std::string> dumpsN =
        par.run(std::move(tasks));
    const double wallN = secondsSince(t_par);

    const bool identical = dumps1 == dumpsN;
    const double speedup = wallN > 0 ? wall1 / wallN : 0;
    std::printf("# sweep: %zu cells  jobs=1 %.3f s  jobs=%u %.3f s  "
                "speedup %.2fx  stats %s\n",
                dumps1.size(), wall1, par.jobs(), wallN, speedup,
                identical ? "byte-identical" : "DIVERGED");

    if (!sweep_out.empty()) {
        std::ofstream out(sweep_out);
        if (!out) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         sweep_out.c_str());
            return 1;
        }
        sim::JsonWriter w(out);
        w.beginObject();
        w.field("benchmark", "sweep_bench");
        w.field("host_cpus", static_cast<std::uint64_t>(host_cpus));
        w.field("configs",
                static_cast<std::uint64_t>(dumps1.size()));
        w.field("measure_jobs", measure_jobs);
        w.field("jobs_1_wall_seconds", wall1);
        w.field("jobs_requested",
                static_cast<std::uint64_t>(sweep_jobs));
        w.field("jobs_n", static_cast<std::uint64_t>(par.jobs()));
        w.field("jobs_n_wall_seconds", wallN);
        w.field("speedup", speedup);
        w.field("stats_identical", identical);
        w.endObject();
        out << "\n";
        std::printf("# wrote %s\n", sweep_out.c_str());
    }
    return identical ? 0 : 1;
}
