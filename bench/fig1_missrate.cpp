/**
 * @file
 * Figure 1: DRAM-cache miss ratio and required flash bandwidth vs
 * DRAM capacity (fraction of the dataset).
 *
 * Methodology (§II-A): run the workloads' page access streams against
 * a page-grained set-associative DRAM cache of varying capacity and
 * report the average miss ratio, plus the flash refill bandwidth from
 * Equation 1:
 *
 *   BW_flash = BW_DRAM / BlockSize * MissRate * PageSize
 *
 * with 0.5 GB/s average per-core DRAM bandwidth, 64 B blocks and 4 KB
 * pages. The paper's observation to reproduce: miss ratios flatten
 * around 3% capacity, which a 64-core system turns into ~60 GB/s of
 * aggregate flash bandwidth — within PCIe Gen5 reach.
 *
 * A page-size ablation (2 KB / 8 KB) is appended, motivating the
 * "use smaller pages to cut bandwidth" note in §II-A.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "mem/set_assoc_cache.hh"
#include "workload/workload.hh"

using namespace astriflash;
using astriflash::mem::SetAssocCache;

namespace {

/** Average DRAM-access miss ratio across all workloads. */
double
missRatioAt(double capacity_ratio, std::uint64_t page_bytes)
{
    const std::uint64_t dataset = 4ull << 30; // 4 GB model
    double sum = 0;
    for (workload::Kind kind : workload::kAllKinds) {
        workload::WorkloadConfig wc;
        wc.datasetBytes = dataset;
        wc.seed = 11;
        workload::Workload gen(kind, wc);

        const std::uint64_t capacity = static_cast<std::uint64_t>(
            static_cast<double>(dataset) * capacity_ratio);
        SetAssocCache cache("dc",
                            capacity / (8 * page_bytes) * 8 *
                                page_bytes,
                            page_bytes, 8);

        // Warm until the cache fills, then measure.
        std::uint64_t accesses = 0;
        const std::uint64_t frames = cache.capacity() / page_bytes;
        while (cache.validLines() < frames && accesses < 40'000'000) {
            const workload::Job job = gen.nextJob();
            for (const auto &op : job.ops) {
                if (op.type == workload::Op::Type::Compute)
                    continue;
                if (!cache.access(op.addr))
                    cache.fill(op.addr);
                ++accesses;
            }
        }
        cache.stats().hits.reset();
        cache.stats().misses.reset();
        for (int jobs = 0; jobs < 4000; ++jobs) {
            const workload::Job job = gen.nextJob();
            for (const auto &op : job.ops) {
                if (op.type == workload::Op::Type::Compute)
                    continue;
                if (!cache.access(op.addr))
                    cache.fill(op.addr);
            }
        }
        sum += cache.stats().missRatio();
    }
    return sum / std::size(workload::kAllKinds);
}

/** Equation 1, per core, in GB/s. */
double
flashBwPerCore(double miss_ratio, std::uint64_t page_bytes)
{
    const double bw_dram = 0.5e9; // 0.5 GB/s per core
    return bw_dram / 64.0 * miss_ratio *
           static_cast<double>(page_bytes) / 1e9;
}

} // namespace

int
main()
{
    std::printf("# Figure 1: miss rate and flash bandwidth vs DRAM "
                "capacity\n");
    std::printf("# (page 4KB, 8-way, average over 7 workloads; "
                "Eq.1 with 0.5 GB/s/core)\n");
    std::printf("%-12s %-12s %-16s %-16s\n", "capacity%", "miss%",
                "BW/core GBps", "BW 64-core GBps");
    for (double ratio : {0.005, 0.01, 0.02, 0.03, 0.04, 0.06}) {
        const double miss = missRatioAt(ratio, 4096);
        const double bw = flashBwPerCore(miss, 4096);
        std::printf("%-12.1f %-12.2f %-16.2f %-16.1f\n", ratio * 100,
                    miss * 100, bw, bw * 64);
    }

    std::printf("\n# Page-size ablation at 3%% capacity\n");
    std::printf("%-12s %-12s %-16s\n", "page B", "miss%",
                "BW 64-core GBps");
    for (std::uint64_t page : {2048ull, 4096ull, 8192ull}) {
        const double miss = missRatioAt(0.03, page);
        std::printf("%-12llu %-12.2f %-16.1f\n",
                    static_cast<unsigned long long>(page), miss * 100,
                    flashBwPerCore(miss, page) * 64);
    }
    return 0;
}
