/**
 * @file
 * §VI-D: garbage-collection interference vs flash capacity.
 *
 * The paper argues GC blocks ~4% of requests on a 256 GB SSD but <1%
 * on a 1 TB SSD, because capacity scales by adding chips/planes while
 * the request rate stays fixed — each plane GCs proportionally less
 * often in the request stream's critical path.
 *
 * Scaled experiment: drive an identical read/write mix (reads from a
 * Zipfian page population, 10% rewrites — deliberately write-heavier
 * than the server workloads to provoke GC) against SSD models of
 * growing plane counts, and report the fraction of reads that arrive
 * while their plane is garbage-collecting.
 */

#include <cstdio>
#include <vector>

#include "flash/flash_device.hh"
#include "sim/rng.hh"
#include "workload/zipfian.hh"

using namespace astriflash;
using namespace astriflash::flash;
using namespace astriflash::sim;

namespace {

struct GcResult {
    double blockedPct;
    double readP99Us;
    std::uint64_t gcInvocations;
    std::uint32_t planes;
};

GcResult
runMix(std::uint32_t channel_scale)
{
    FlashConfig cfg;
    cfg.channels = 2 * channel_scale; // capacity scales with chips
    cfg.diesPerChannel = 2;
    cfg.planesPerDie = 2;
    cfg.blocksPerPlane = 64;
    cfg.pagesPerBlock = 64;
    cfg.gcFreeBlockLow = 4;

    // Fill to ~90% so GC has real work.
    const std::uint64_t preload =
        static_cast<std::uint64_t>(cfg.userPages() * 0.9);
    FlashDevice dev("ssd", cfg, preload);

    Rng rng(7);
    workload::ZipfianGenerator zipf(preload, 0.99, true, 13);

    // Fixed request rate regardless of capacity: one access per
    // 5 us with a 1.5% rewrite fraction (the paper's workloads have
    // limited write traffic, §V-A). At the smallest capacity this
    // keeps the program path ~20% utilized before GC amplification.
    Ticks t = 0;
    const std::uint64_t ops = 400000;
    for (std::uint64_t i = 0; i < ops; ++i) {
        t += microseconds(5);
        const std::uint64_t lpn = zipf.next();
        if (rng.chance(0.015))
            dev.write(Lpn(lpn), t);
        else
            dev.read(Lpn(lpn), t);
    }
    GcResult res;
    res.planes = cfg.totalPlanes();
    const auto &st = dev.stats();
    res.blockedPct = st.reads.value()
        ? 100.0 * static_cast<double>(st.gcBlockedReads.value()) /
              static_cast<double>(st.reads.value())
        : 0.0;
    res.readP99Us = static_cast<double>(
                        st.readLatency.percentile(0.99)) /
                    kMicrosecond;
    res.gcInvocations = dev.ftl().stats().gcInvocations.value();
    return res;
}

} // namespace

int
main()
{
    std::printf("# GC interference vs capacity (fixed request rate, "
                "1.5%% rewrites, 90%% full)\n");
    std::printf("%-10s %-10s %-16s %-14s %-10s\n", "scale",
                "planes", "blocked reads%", "read p99 us", "GCs");
    // scale=1 is a deliberately undersized device (saturated by the
    // mix); scale=2 plays the paper's 256 GB point, scale=4 the 1 TB
    // point (capacity grows via plane count at fixed request rate).
    for (std::uint32_t scale : {1u, 2u, 4u, 8u}) {
        const GcResult r = runMix(scale);
        std::printf("%-10ux %-10u %-16.2f %-14.1f %-10llu\n", scale,
                    r.planes, r.blockedPct, r.readP99Us,
                    static_cast<unsigned long long>(
                        r.gcInvocations));
        std::fflush(stdout);
    }
    std::printf("# Expect: blocked%% falls as capacity (plane count) "
                "grows — the paper's 4%% @256GB -> <1%% @1TB.\n");
    return 0;
}
