/**
 * @file
 * Figure 10: 99th-percentile response latency (normalized to the
 * DRAM-only average service time) vs throughput (normalized to the
 * DRAM-only maximum) for DRAM-only and AstriFlash running TATP under
 * open-loop Poisson arrivals (§VI-C).
 *
 * Paper shape to reproduce: AstriFlash sits above DRAM-only at low
 * load (some requests always pay a flash access), but as load grows
 * the switch-on-miss architecture hides the flash wait inside the
 * queueing delay, so AstriFlash at ~93% of DRAM-only's peak matches
 * the tail latency DRAM-only shows at ~96%.
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

struct Point {
    double load;   ///< Normalized throughput (vs DRAM-only max).
    double p99;    ///< p99 response / DRAM-only avg service.
};

SystemConfig
baseCfg(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = 4;
    cfg.workloadKind = workload::Kind::Tatp;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = 500;
    cfg.measureJobs = 6000;
    return cfg;
}

} // namespace

int
main()
{
    // Closed-loop references: maximum throughput and mean service of
    // the DRAM-only system.
    double dram_max = 0, dram_avg_svc_us = 0;
    {
        System sys(baseCfg(SystemKind::DramOnly));
        const auto r = sys.run();
        dram_max = r.throughputJobsPerSec;
        dram_avg_svc_us = r.avgServiceUs;
    }
    std::printf("# Figure 10: p99 response (x DRAM-only avg service "
                "= %.1f us) vs normalized throughput\n",
                dram_avg_svc_us);
    std::printf("%-12s %-22s %-22s\n", "", "DRAM-only", "AstriFlash");
    std::printf("%-12s %-10s %-10s %-10s %-10s\n", "target%",
                "thr%", "p99x", "thr%", "p99x");

    // Sweep the arrival rate from light load toward saturation.
    for (double target : {0.3, 0.5, 0.65, 0.8, 0.87, 0.93, 0.96}) {
        const double lambda = target * dram_max; // jobs/s systemwide
        const auto gap = static_cast<sim::Ticks>(1e12 / lambda);
        double thr[2], p99[2];
        const SystemKind kinds[2] = {SystemKind::DramOnly,
                                     SystemKind::AstriFlash};
        for (int i = 0; i < 2; ++i) {
            SystemConfig cfg = baseCfg(kinds[i]);
            cfg.meanInterarrival = gap;
            System sys(cfg);
            const auto r = sys.run();
            thr[i] = r.throughputJobsPerSec / dram_max * 100.0;
            p99[i] = r.p99ResponseUs / dram_avg_svc_us;
        }
        std::printf("%-12.0f %-10.0f %-10.1f %-10.0f %-10.1f\n",
                    target * 100, thr[0], p99[0], thr[1], p99[1]);
        std::fflush(stdout);
    }
    return 0;
}
