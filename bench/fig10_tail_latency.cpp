/**
 * @file
 * Figure 10: 99th-percentile response latency (normalized to the
 * DRAM-only average service time) vs throughput (normalized to the
 * DRAM-only maximum) for DRAM-only and AstriFlash running TATP under
 * open-loop Poisson arrivals (§VI-C).
 *
 * Paper shape to reproduce: AstriFlash sits above DRAM-only at low
 * load (some requests always pay a flash access), but as load grows
 * the switch-on-miss architecture hides the flash wait inside the
 * queueing delay, so AstriFlash at ~93% of DRAM-only's peak matches
 * the tail latency DRAM-only shows at ~96%.
 */

#include <cstdio>
#include <fstream>
#include <functional>
#include <vector>

#include "sim/json.hh"
#include "sim/option_parser.hh"
#include "sim/sweep_runner.hh"

#include "core/fabric_options.hh"
#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

std::uint64_t measure_jobs = 6000;
std::uint32_t n_cores = 4;
FabricOptions fabric;

struct Point {
    double target; ///< Requested load (fraction of DRAM-only max).
    double thr[2]; ///< Achieved throughput % of DRAM-only max.
    double p99[2]; ///< p99 response / DRAM-only avg service.
};

SystemConfig
baseCfg(SystemKind kind)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = n_cores;
    cfg.workloadKind = workload::Kind::Tatp;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = measure_jobs / 12 + 1;
    cfg.measureJobs = measure_jobs;
    fabric.apply(cfg);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string stats_json;
    std::uint32_t host_jobs = 1;
    sim::OptionParser opts(
        "fig10_tail_latency",
        "Figure 10: p99 response latency vs normalized throughput "
        "under open-loop Poisson arrivals.");
    opts.addUint("measure-jobs", &measure_jobs,
                 "measured jobs per point");
    opts.addUint32("cores", &n_cores, "simulated cores");
    opts.addUint32("jobs", &host_jobs,
                   "host threads running sweep points in parallel "
                   "(0 = all hardware threads)");
    opts.addString("stats-json", &stats_json,
                   "write the sweep as JSON to FILE");
    fabric.addTo(opts);
    opts.parseOrExit(argc, argv);

    // Closed-loop references: maximum throughput and mean service of
    // the DRAM-only system. Every sweep point's arrival rate derives
    // from this run, so it cannot join the parallel batch.
    double dram_max = 0, dram_avg_svc_us = 0;
    {
        System sys(baseCfg(SystemKind::DramOnly));
        const auto r = sys.run();
        dram_max = r.throughputJobsPerSec;
        dram_avg_svc_us = r.avgServiceUs();
    }
    std::printf("# Figure 10: p99 response (x DRAM-only avg service "
                "= %.1f us) vs normalized throughput\n",
                dram_avg_svc_us);
    std::printf("%-12s %-22s %-22s\n", "", "DRAM-only", "AstriFlash");
    std::printf("%-12s %-10s %-10s %-10s %-10s\n", "target%",
                "thr%", "p99x", "thr%", "p99x");

    // Sweep the arrival rate from light load toward saturation. Every
    // (load, kind) cell is an isolated simulation; the SweepRunner
    // executes them across host threads and hands results back in
    // submission order, so output is identical at any --jobs.
    const std::vector<double> targets = {0.3,  0.5,  0.65, 0.8,
                                         0.87, 0.93, 0.96};
    const SystemKind kinds[2] = {SystemKind::DramOnly,
                                 SystemKind::AstriFlash};
    std::vector<std::function<RunResults()>> tasks;
    for (double target : targets) {
        const double lambda = target * dram_max; // jobs/s systemwide
        const auto gap = static_cast<sim::Ticks>(1e12 / lambda);
        for (SystemKind kind : kinds) {
            SystemConfig cfg = baseCfg(kind);
            cfg.meanInterarrival = gap;
            tasks.emplace_back([cfg] {
                System sys(cfg);
                return sys.run();
            });
        }
    }
    const sim::SweepRunner runner(host_jobs);
    const std::vector<RunResults> runs = runner.run(std::move(tasks));

    std::vector<Point> curve;
    for (std::size_t t = 0; t < targets.size(); ++t) {
        Point pt;
        pt.target = targets[t];
        for (int i = 0; i < 2; ++i) {
            const RunResults &r = runs[t * 2 + static_cast<std::size_t>(i)];
            pt.thr[i] = r.throughputJobsPerSec / dram_max * 100.0;
            pt.p99[i] = r.responseUs(0.99) / dram_avg_svc_us;
        }
        curve.push_back(pt);
        std::printf("%-12.0f %-10.0f %-10.1f %-10.0f %-10.1f\n",
                    pt.target * 100, pt.thr[0], pt.p99[0], pt.thr[1],
                    pt.p99[1]);
        std::fflush(stdout);
    }

    if (!stats_json.empty()) {
        std::ofstream out(stats_json);
        if (!out) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         stats_json.c_str());
            return 1;
        }
        sim::JsonWriter w(out);
        w.beginObject();
        w.field("benchmark", "fig10_tail_latency");
        w.field("dram_only_max_jobs_per_sec", dram_max);
        w.field("dram_only_avg_service_us", dram_avg_svc_us);
        w.key("points");
        w.beginArray();
        for (const Point &pt : curve) {
            w.beginObject();
            w.field("target_load", pt.target);
            w.field("dram_throughput_pct", pt.thr[0]);
            w.field("dram_p99_norm", pt.p99[0]);
            w.field("astriflash_throughput_pct", pt.thr[1]);
            w.field("astriflash_p99_norm", pt.p99[1]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        out << "\n";
    }
    return 0;
}
