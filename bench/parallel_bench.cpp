/**
 * @file
 * Conservative-parallel-engine benchmark (BENCH_parallel.json).
 *
 * Runs the paper-scale closed-loop AstriFlash TATP configuration at
 * 64/128/256 simulated cores across a --host-jobs ladder and records
 * wall-clock events/s and jobs/s per (cores, host-jobs) cell, plus the
 * engine's barrier telemetry (rounds, barriers, cross-domain posts).
 * Numbers are honest-recorded on whatever host runs the bench — the
 * host CPU count is in the metadata, so a flat curve on a 1-CPU CI
 * runner is self-explaining, exactly like BENCH_sweep.json.
 *
 * The determinism gate rides along: every cell's full stats-tree JSON
 * must be byte-identical to the host-jobs=1 run of the same core
 * count. A divergence fails the bench (exit 1) — perf numbers from a
 * wrong simulation are worthless.
 *
 *   parallel_bench                         # 64/128/256 x jobs 1,2,4
 *   parallel_bench --quick                 # CI smoke: 64 cores only
 *   parallel_bench --cores=64 --host-jobs=1,8
 */

// aflint-allow-file(AF001): benchmark harness measures host wall-clock
// time by design; no simulated behavior depends on it.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "sim/option_parser.hh"
#include "sim/sweep_runner.hh"

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Parse a comma-separated unsigned list ("64,128,256"). */
bool
parseList(const std::string &value, std::vector<unsigned> *out)
{
    out->clear();
    std::istringstream in(value);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (item.empty())
            return false;
        char *end = nullptr;
        const unsigned long v = std::strtoul(item.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || v == 0)
            return false;
        out->push_back(static_cast<unsigned>(v));
    }
    return !out->empty();
}

/** One measured (cores, host-jobs) cell. */
struct Cell {
    unsigned cores = 0;
    unsigned hostJobs = 0;
    double wallSeconds = 0;
    std::uint64_t events = 0;
    std::uint64_t jobs = 0;
    double jobsPerSec = 0; ///< Simulated throughput (jobs/sim-sec).
    sim::ParallelEngine::Stats engine;
    std::string statsJson;

    double
    eventsPerHostSec() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(events) / wallSeconds
                   : 0;
    }

    double
    jobsPerHostSec() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(jobs) / wallSeconds
                   : 0;
    }
};

Cell
runCell(unsigned cores, unsigned host_jobs, std::uint64_t measure_jobs,
        std::uint32_t bc_shards, bool fc_pipeline)
{
    SystemConfig cfg;
    cfg.kind = SystemKind::AstriFlash;
    cfg.cores = cores;
    cfg.workloadKind = workload::Kind::Tatp;
    cfg.workload.datasetBytes = 1ull << 28;
    cfg.warmupJobs = measure_jobs / 16 + 1;
    cfg.measureJobs = measure_jobs;
    cfg.dramCache.bc.shards = bc_shards;
    if (fc_pipeline) {
        // Pipelined miss path: each shard's domain lands in its own
        // exec group, so host-jobs > 1 actually runs concurrently.
        // Shards must divide the flash device count for the split.
        cfg.dramCache.fc.pipeline = true;
        cfg.dramCache.fabric.devices = bc_shards;
    }
    cfg.hostJobs = host_jobs;

    System sys(cfg);
    const auto t0 = Clock::now();
    const RunResults res = sys.run();

    Cell c;
    c.cores = cores;
    c.hostJobs = host_jobs;
    c.wallSeconds = secondsSince(t0);
    c.events = sys.eventsExecuted();
    c.jobs = res.jobs;
    c.jobsPerSec = res.throughputJobsPerSec;
    c.engine = sys.engineStats();
    c.statsJson = sys.statsRegistry().dumpJson();
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<unsigned> core_counts{64, 128, 256};
    std::vector<unsigned> jobs_list{1, 2, 4};
    std::uint64_t measure_jobs = 2000;
    std::uint32_t bc_shards = 4;
    std::string out_file = "BENCH_parallel.json";
    std::string partition_file;
    bool fused = false;
    bool quick = false;

    sim::OptionParser opts(
        "parallel_bench",
        "Measure the conservative parallel engine across a host-jobs "
        "ladder at paper-scale core counts; byte-compare every cell's "
        "stats against the host-jobs=1 run.");
    opts.addCustom("cores", "LIST",
                   "simulated core counts (default 64,128,256)",
                   [&core_counts](const std::string &v) {
                       return parseList(v, &core_counts);
                   });
    opts.addCustom("host-jobs", "LIST",
                   "host-jobs ladder per core count (default 1,2,4)",
                   [&jobs_list](const std::string &v) {
                       return parseList(v, &jobs_list);
                   });
    opts.addUint("measure-jobs", &measure_jobs,
                 "measured jobs per cell");
    opts.addUint32("bc-shards", &bc_shards,
                   "backside-controller shards (= extra domains)");
    opts.addString("out", &out_file,
                   "write results to FILE (empty: skip)");
    opts.addString("partition-out", &partition_file,
                   "write the exec-group partition dump to FILE");
    opts.addFlag("fused", &fused,
                 "measure the fused (synchronous, merged-group) miss "
                 "path instead of the pipelined split");
    opts.addFlag("quick", &quick,
                 "CI smoke: 64 cores only, fewer measured jobs");
    opts.parseOrExit(argc, argv);

    if (quick) {
        core_counts = {64};
        measure_jobs = std::min<std::uint64_t>(measure_jobs, 500);
    }

    const unsigned host_cpus = sim::SweepRunner::hardwareJobs();
    std::printf("# parallel_bench: host_cpus=%u  measure_jobs=%llu  "
                "bc_shards=%u\n",
                host_cpus,
                static_cast<unsigned long long>(measure_jobs),
                bc_shards);

    std::vector<Cell> cells;
    bool identical = true;
    for (const unsigned cores : core_counts) {
        std::string baseline;
        for (const unsigned hj : jobs_list) {
            Cell c = runCell(cores, hj, measure_jobs, bc_shards,
                             !fused);
            const bool first = baseline.empty();
            const bool match = first || baseline == c.statsJson;
            std::printf("cores=%-4u host-jobs=%-2u  %10llu events  "
                        "%7.3f s  %12.0f ev/s  %8.1f jobs/s  "
                        "groups=%u barriers=%llu posts=%llu  "
                        "stats %s\n",
                        cores, hj,
                        static_cast<unsigned long long>(c.events),
                        c.wallSeconds, c.eventsPerHostSec(),
                        c.jobsPerHostSec(), c.engine.groups,
                        static_cast<unsigned long long>(
                            c.engine.barriers),
                        static_cast<unsigned long long>(
                            c.engine.postsDelivered),
                        first ? "baseline"
                              : (match ? "byte-identical"
                                       : "DIVERGED"));
            std::fflush(stdout);
            if (!match) {
                identical = false;
                // Print the first differing stat lines: a determinism
                // failure without the offending counters is
                // undebuggable from a CI log.
                std::istringstream base_in(baseline);
                std::istringstream cell_in(c.statsJson);
                std::string bl, cl;
                unsigned shown = 0;
                while (shown < 8) {
                    const bool b_ok = static_cast<bool>(
                        std::getline(base_in, bl));
                    const bool c_ok = static_cast<bool>(
                        std::getline(cell_in, cl));
                    if (!b_ok && !c_ok)
                        break;
                    if (!b_ok)
                        bl.clear();
                    if (!c_ok)
                        cl.clear();
                    if (bl == cl)
                        continue;
                    std::fprintf(stderr,
                                 "  diverged: hj=1 %s\n"
                                 "            hj=%u %s\n",
                                 bl.c_str(), hj, cl.c_str());
                    ++shown;
                }
            }
            if (first)
                baseline = c.statsJson;
            c.statsJson.clear();
            cells.push_back(std::move(c));
        }
    }

    if (!out_file.empty()) {
        std::ofstream out(out_file);
        if (!out) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         out_file.c_str());
            return 1;
        }
        sim::JsonWriter w(out);
        w.beginObject();
        w.field("benchmark", "parallel_bench");
        w.field("host_cpus", static_cast<std::uint64_t>(host_cpus));
        w.field("measure_jobs", measure_jobs);
        w.field("bc_shards",
                static_cast<std::uint64_t>(bc_shards));
        w.field("fc_pipeline", !fused);
        w.field("stats_identical", identical);
        w.key("cells");
        w.beginArray();
        for (const Cell &c : cells) {
            w.beginObject();
            w.field("cores", static_cast<std::uint64_t>(c.cores));
            w.field("host_jobs",
                    static_cast<std::uint64_t>(c.hostJobs));
            w.field("events", c.events);
            w.field("wall_seconds", c.wallSeconds);
            w.field("events_per_host_sec", c.eventsPerHostSec());
            w.field("jobs_per_host_sec", c.jobsPerHostSec());
            w.field("sim_jobs_per_sec", c.jobsPerSec);
            w.field("engine_rounds", c.engine.rounds);
            w.field("engine_barriers", c.engine.barriers);
            w.field("engine_posts", c.engine.postsDelivered);
            w.field("engine_horizon_stalls", c.engine.horizonStalls);
            w.field("exec_groups",
                    static_cast<std::uint64_t>(c.engine.groups));
            w.key("group_events");
            w.beginArray();
            for (const std::uint64_t ev : c.engine.groupEvents)
                w.value(ev);
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
        out << "\n";
        std::printf("# wrote %s\n", out_file.c_str());
    }

    if (!partition_file.empty()) {
        // Exec-group partition dump (the perf-smoke artifact): the
        // layout is config-determined — group 0 carries the cores,
        // the FC, and the arrival process; each further group one BC
        // shard's domain — and the per-group event totals come from
        // the deepest measured cell.
        std::ofstream out(partition_file);
        if (!out) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         partition_file.c_str());
            return 1;
        }
        const Cell *deepest = nullptr;
        for (const Cell &c : cells)
            if (deepest == nullptr || c.engine.groups > deepest->engine.groups ||
                (c.engine.groups == deepest->engine.groups &&
                 c.events > deepest->events))
                deepest = &c;
        sim::JsonWriter w(out);
        w.beginObject();
        w.field("fc_pipeline", !fused);
        w.field("bc_shards", static_cast<std::uint64_t>(bc_shards));
        if (deepest != nullptr) {
            w.field("cores",
                    static_cast<std::uint64_t>(deepest->cores));
            w.field("host_jobs",
                    static_cast<std::uint64_t>(deepest->hostJobs));
            w.field("exec_groups", static_cast<std::uint64_t>(
                                       deepest->engine.groups));
            w.key("groups");
            w.beginArray();
            for (std::uint32_t g = 0; g < deepest->engine.groups;
                 ++g) {
                w.beginObject();
                w.field("group", static_cast<std::uint64_t>(g));
                w.field("domains",
                        g == 0 ? std::string("cores+fc+arrivals")
                               : "dcache.bc" + std::to_string(g - 1));
                w.field("events",
                        g < deepest->engine.groupEvents.size()
                            ? deepest->engine.groupEvents[g]
                            : 0);
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
        out << "\n";
        std::printf("# wrote %s\n", partition_file.c_str());
    }

    if (!identical) {
        std::fprintf(stderr,
                     "parallel_bench: a host-jobs run diverged from "
                     "its host-jobs=1 baseline\n");
        return 1;
    }
    return 0;
}
