/**
 * @file
 * Ablations of the design choices DESIGN.md §5 calls out:
 *
 *  1. Thread-switch cost sweep — bridges the AstriFlash regime
 *     (100 ns) to the OS context-switch regime (5 µs), showing why
 *     the co-design insists on user-level switches.
 *  2. Pending-queue bound vs tail latency — the §IV-D1 sizing rule.
 *  3. Miss Status Row capacity — set conflicts throttle the BC when
 *     the MSR is undersized relative to outstanding misses.
 *  4. DRAM-cache associativity — conflict misses at page grain.
 *  5. Forward-progress bit off — the livelock demonstration: under
 *     deliberate cache thrash, runs without the bit fail to finish.
 */

#include <cstdio>

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

SystemConfig
baseCfg()
{
    SystemConfig cfg;
    cfg.kind = SystemKind::AstriFlash;
    cfg.cores = 4;
    cfg.workloadKind = workload::Kind::Tatp;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = 400;
    cfg.measureJobs = 5000;
    return cfg;
}

} // namespace

int
main()
{
    // Reference point.
    double dram_thr = 0;
    {
        SystemConfig cfg = baseCfg();
        cfg.kind = SystemKind::DramOnly;
        System sys(cfg);
        dram_thr = sys.run().throughputJobsPerSec;
    }

    std::printf("# Ablation 1: thread-switch cost (TATP, 4 cores; "
                "normalized throughput)\n");
    std::printf("%-14s %-12s %-12s\n", "switch cost", "thr%",
                "p99 svc us");
    for (sim::Ticks cost :
         {sim::Ticks{0}, sim::nanoseconds(100), sim::nanoseconds(500),
          sim::microseconds(1), sim::microseconds(5)}) {
        SystemConfig cfg = baseCfg();
        cfg.threadSwitch = cost;
        System sys(cfg);
        const auto r = sys.run();
        std::printf("%-14.1f %-12.1f %-12.1f\n",
                    sim::toMicroseconds(cost),
                    100.0 * r.throughputJobsPerSec / dram_thr,
                    r.serviceUs(0.99));
        std::fflush(stdout);
    }

    std::printf("\n# Ablation 2: pending-queue bound (p99 service)\n");
    std::printf("%-10s %-12s %-14s %-16s\n", "cap", "thr%",
                "p99 svc us", "overflows");
    for (std::uint32_t cap : {2u, 4u, 8u, 16u, 64u}) {
        SystemConfig cfg = baseCfg();
        cfg.sched.pendingCap = cap;
        System sys(cfg);
        const auto r = sys.run();
        std::uint64_t ovf = 0;
        for (std::uint32_t c = 0; c < cfg.cores; ++c) {
            ovf += sys.coreAt(c)
                       .scheduler()
                       .stats()
                       .pendingOverflows.value();
        }
        std::printf("%-10u %-12.1f %-14.1f %-16llu\n", cap,
                    100.0 * r.throughputJobsPerSec / dram_thr,
                    r.serviceUs(0.99),
                    static_cast<unsigned long long>(ovf));
        std::fflush(stdout);
    }

    std::printf("\n# Ablation 3: Miss Status Row capacity "
                "(set-conflict stalls)\n");
    std::printf("%-12s %-12s %-14s %-14s\n", "MSR entries", "thr%",
                "p99 svc us", "set stalls");
    for (std::uint32_t sets : {1u, 2u, 8u, 128u}) {
        SystemConfig cfg = baseCfg();
        cfg.dramCache.msrSets = sets;
        cfg.dramCache.msrEntriesPerSet = 2;
        System sys(cfg);
        const auto r = sys.run();
        std::printf("%-12u %-12.1f %-14.1f %-14llu\n", sets * 2,
                    100.0 * r.throughputJobsPerSec / dram_thr,
                    r.serviceUs(0.99),
                    static_cast<unsigned long long>(
                        sys.dramCache()
                            ->msr()
                            .stats()
                            .setFullStalls.value()));
        std::fflush(stdout);
    }

    std::printf("\n# Ablation 4: DRAM-cache associativity "
                "(hit ratio at 3%% capacity)\n");
    std::printf("%-8s %-12s %-12s\n", "ways", "hit%", "thr%");
    for (std::uint32_t ways : {1u, 2u, 4u, 8u, 16u}) {
        SystemConfig cfg = baseCfg();
        cfg.dramCache.ways = ways;
        System sys(cfg);
        const auto r = sys.run();
        std::printf("%-8u %-12.2f %-12.1f\n", ways,
                    100.0 * r.dramCacheHitRatio,
                    100.0 * r.throughputJobsPerSec / dram_thr);
        std::fflush(stdout);
    }

    std::printf("\n# Ablation 5: forward-progress bit under extreme "
                "cache thrash (0.02%% DRAM cache,\n"
                "# FIFO scheduling so resumes are delayed past the "
                "cache turnover time)\n");
    std::printf("%-8s %-12s %-14s %-14s %-12s\n", "FP bit",
                "thr jobs/s", "p99 svc us", "forced-sync",
                "switches");
    for (bool fp : {true, false}) {
        SystemConfig cfg = baseCfg();
        cfg.kind = SystemKind::AstriFlashNoPS;
        cfg.dramCacheRatio = 0.0002;
        cfg.warmupJobs = 50;
        cfg.measureJobs = 500;
        cfg.maxSimTicks = sim::milliseconds(400);
        cfg.forwardProgressBit = fp;
        System sys(cfg);
        const auto r = sys.run();
        std::uint64_t remisses = 0, forced = 0;
        for (std::uint32_t c = 0; c < cfg.cores; ++c) {
            remisses +=
                sys.coreAt(c).stats().switchOnMiss.value();
            forced +=
                sys.coreAt(c).stats().syncMissStalls.value();
        }
        std::printf("%-8s %-12.0f %-14.1f %-14llu %-12llu\n",
                    fp ? "on" : "off", r.throughputJobsPerSec,
                    r.serviceUs(0.99),
                    static_cast<unsigned long long>(forced),
                    static_cast<unsigned long long>(remisses));
        std::fflush(stdout);
    }
    std::printf("# The bit trades throughput for a *guarantee*: each "
                "resume retires at least one\n"
                "# instruction (forced-sync events). Without it, "
                "resumed threads whose page was\n"
                "# re-evicted bounce back to the pending queue "
                "(extra switches) with no bound on\n"
                "# how often — benign on average, livelock-prone "
                "under adversarial contention.\n");

    std::printf("\n# Ablation 6: footprint-cache mode (flash refill "
                "bandwidth, §II-A optimization)\n");
    std::printf("%-12s %-12s %-16s %-14s %-14s\n", "footprint",
                "thr%", "flash MB read", "sub-page miss",
                "p99 svc us");
    for (bool fpc : {false, true}) {
        SystemConfig cfg = baseCfg();
        cfg.dramCache.footprintEnabled = fpc;
        System sys(cfg);
        const auto r = sys.run();
        std::printf("%-12s %-12.1f %-16.2f %-14llu %-14.1f\n",
                    fpc ? "on" : "off",
                    100.0 * r.throughputJobsPerSec / dram_thr,
                    static_cast<double>(sys.dramCache()
                                            ->stats()
                                            .flashBytesRead.value()) /
                        1e6,
                    static_cast<unsigned long long>(
                        sys.dramCache()
                            ->stats()
                            .subPageMisses.value()),
                    r.serviceUs(0.99));
        std::fflush(stdout);
    }
    std::printf("# Expect: footprint mode cuts refill bytes for "
                "re-referenced pages at the cost of a\n"
                "# small sub-page miss rate.\n");
    return 0;
}
