/**
 * @file
 * Ablations of the design choices DESIGN.md §5 calls out:
 *
 *  1. Thread-switch cost sweep — bridges the AstriFlash regime
 *     (100 ns) to the OS context-switch regime (5 µs), showing why
 *     the co-design insists on user-level switches.
 *  2. Pending-queue bound vs tail latency — the §IV-D1 sizing rule.
 *  3. Miss Status Row capacity — set conflicts throttle the BC when
 *     the MSR is undersized relative to outstanding misses.
 *  4. DRAM-cache associativity — conflict misses at page grain.
 *  5. Forward-progress bit off — the livelock demonstration: under
 *     deliberate cache thrash, runs without the bit fail to finish.
 *  6. Footprint-cache mode — flash refill bandwidth (§II-A).
 *  7. BC work-queue depth — the fc_to_bc channel bound: shrinking the
 *     backside controller's inbound queue below the outstanding-miss
 *     window turns slot recycling into frontside stall cycles, the
 *     §IV-D sizing argument for the BC queues. Runs standalone with
 *     --only-bc-depth and exports JSON (--json) for the CI
 *     perf-smoke artifact.
 *  8. BC shard × flash-device sweep — with the per-shard work queue
 *     deliberately shrunk (fc_to_bc depth 16), interleaving misses
 *     over more backside shards divides the queue pressure, so stall
 *     cycles fall as shards grow. Runs standalone with --only-shards
 *     and exports JSON (--json) for the CI perf-smoke artifact
 *     (BENCH_shards.json).
 *
 * Every run is an isolated simulation parameterized up front, so the
 * whole suite (reference run included) executes as one SweepRunner
 * batch behind --jobs; rows print in fixed order regardless of which
 * host thread finished first.
 */

#include <cstdio>
#include <fstream>
#include <functional>
#include <vector>

#include "sim/json.hh"
#include "sim/option_parser.hh"
#include "sim/sweep_runner.hh"

#include "core/fabric_options.hh"
#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

FabricOptions fabric;

/** RunResults plus two ablation-specific counters pulled from the
 *  component stats tree before the System is torn down. */
struct Cell {
    RunResults r;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

SystemConfig
baseCfg()
{
    SystemConfig cfg;
    cfg.kind = SystemKind::AstriFlash;
    cfg.cores = 4;
    cfg.workloadKind = workload::Kind::Tatp;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = 400;
    cfg.measureJobs = 5000;
    fabric.apply(cfg);
    return cfg;
}

using Extract = std::function<void(System &, Cell &)>;

std::function<Cell()>
makeTask(SystemConfig cfg, Extract extract = nullptr)
{
    return [cfg, extract] {
        System sys(cfg);
        Cell cell;
        cell.r = sys.run();
        if (extract)
            extract(sys, cell);
        return cell;
    };
}

/** Sum a per-core counter over all cores (a: switch-on-miss etc.). */
std::uint64_t
sumCores(System &sys, std::uint64_t n_cores,
         const std::function<std::uint64_t(SimCore &)> &get)
{
    std::uint64_t total = 0;
    for (std::uint32_t c = 0; c < n_cores; ++c)
        total += get(sys.coreAt(c));
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t host_jobs = 1;
    bool only_bc_depth = false;
    bool only_shards = false;
    std::string json_out;
    sim::OptionParser opts(
        "ablation_astriflash",
        "Ablations of the §IV design choices (switch cost, pending "
        "bound, MSR size, associativity, FP bit, footprint mode, BC "
        "queue depth, BC shards x flash devices).");
    opts.addUint32("jobs", &host_jobs,
                   "host threads running ablation cells in parallel "
                   "(0 = all hardware threads)");
    opts.addFlag("only-bc-depth", &only_bc_depth,
                 "run only the BC work-queue depth sweep (ablation 7)");
    opts.addFlag("only-shards", &only_shards,
                 "run only the BC shard x flash-device sweep "
                 "(ablation 8)");
    opts.addString("json", &json_out,
                   "write the standalone sweep rows as JSON to this "
                   "file");
    fabric.addTo(opts);
    opts.parseOrExit(argc, argv);

    if (only_shards) {
        // Ablation 8: interleave the miss stream over more backside
        // shards while each shard's inbound queue is held at depth 16
        // (well under the outstanding-miss window, so the unsharded
        // cache visibly stalls). Devices stripe the same flash config
        // behind the fabric.
        const std::uint32_t shard_counts[] = {1, 2, 4, 8};
        const std::uint32_t device_counts[] = {1, 2};
        std::vector<std::function<Cell()>> tasks;
        for (std::uint32_t devices : device_counts) {
            for (std::uint32_t shards : shard_counts) {
                SystemConfig cfg = baseCfg();
                cfg.dramCache.bc.shards = shards;
                cfg.dramCache.fabric.devices = devices;
                cfg.dramCache.channels.fcToBcDepth = 16;
                tasks.push_back(
                    makeTask(cfg, [](System &sys, Cell &cell) {
                        const auto *dc = sys.dramCache();
                        for (std::uint32_t s = 0;
                             s < dc->shardCount(); ++s) {
                            const auto &ch =
                                dc->missChannel(s).stats();
                            cell.a += ch.fullStalls.value();
                            cell.b += ch.stallTicks.value();
                        }
                    }));
            }
        }
        const sim::SweepRunner runner(host_jobs);
        const std::vector<Cell> cells = runner.run(std::move(tasks));

        std::printf("# Ablation 8: BC shards x flash devices "
                    "(fc_to_bc depth pinned to 16 per shard)\n");
        std::printf("%-8s %-9s %-14s %-14s %-16s %-14s\n", "shards",
                    "devices", "thr jobs/s", "p99 svc us",
                    "full stalls", "stall us");
        std::size_t at = 0;
        for (std::uint32_t devices : device_counts) {
            for (std::uint32_t shards : shard_counts) {
                const Cell &cell = cells[at++];
                std::printf(
                    "%-8u %-9u %-14.0f %-14.1f %-16llu %-14.1f\n",
                    shards, devices, cell.r.throughputJobsPerSec,
                    cell.r.serviceUs(0.99),
                    static_cast<unsigned long long>(cell.a),
                    sim::toMicroseconds(cell.b));
            }
        }
        std::printf("# Expect: stall cycles fall as the miss stream "
                    "spreads over more shards; extra\n"
                    "# devices shorten GC-blocked reads but leave "
                    "the queueing story unchanged.\n");

        if (!json_out.empty()) {
            std::ofstream out(json_out);
            if (!out) {
                std::fprintf(stderr,
                             "ablation_astriflash: cannot open "
                             "'%s'\n",
                             json_out.c_str());
                return 1;
            }
            sim::JsonWriter w(out);
            w.beginObject();
            w.field("benchmark", "shard_fabric_sweep");
            w.field("workload", "tatp");
            w.field("cores", 4u);
            w.field("fc_to_bc_depth", 16u);
            w.key("rows");
            w.beginArray();
            at = 0;
            for (std::uint32_t devices : device_counts) {
                for (std::uint32_t shards : shard_counts) {
                    const Cell &cell = cells[at++];
                    w.beginObject();
                    w.field("shards", shards);
                    w.field("devices", devices);
                    w.field("full_stalls", cell.a);
                    w.field("stall_ticks", cell.b);
                    w.field("throughput_jobs_per_sec",
                            cell.r.throughputJobsPerSec);
                    w.field("p99_service_us",
                            cell.r.serviceUs(0.99));
                    w.endObject();
                }
            }
            w.endArray();
            w.endObject();
            out << "\n";
        }
        return 0;
    }

    const sim::Ticks switch_costs[] = {
        sim::Ticks{0}, sim::nanoseconds(100), sim::nanoseconds(500),
        sim::microseconds(1), sim::microseconds(5)};
    const std::uint32_t pending_caps[] = {2, 4, 8, 16, 64};
    const std::uint32_t msr_sets[] = {1, 2, 8, 128};
    const std::uint32_t assoc_ways[] = {1, 2, 4, 8, 16};
    const bool fp_bits[] = {true, false};
    const bool footprint_modes[] = {false, true};
    // Deepest first: 65536 is the timing-neutral default (never
    // stalls); each halving below the outstanding-miss window must
    // show monotonically non-decreasing frontside stall cycles.
    const std::uint32_t bc_depths[] = {65536, 64, 32, 16, 8, 4};

    // Build the whole suite up front: task 0 is the DRAM-only
    // reference every ablation normalizes against (skipped in the
    // standalone BC-depth mode, which reports absolute numbers).
    std::vector<std::function<Cell()>> tasks;
    if (!only_bc_depth) {
        SystemConfig cfg = baseCfg();
        cfg.kind = SystemKind::DramOnly;
        tasks.push_back(makeTask(cfg));
    }
    if (!only_bc_depth) {
        for (sim::Ticks cost : switch_costs) {
            SystemConfig cfg = baseCfg();
            cfg.threadSwitch = cost;
            tasks.push_back(makeTask(cfg));
        }
        for (std::uint32_t cap : pending_caps) {
            SystemConfig cfg = baseCfg();
            cfg.sched.pendingCap = cap;
            tasks.push_back(makeTask(cfg, [](System &sys,
                                             Cell &cell) {
                cell.a = sumCores(sys, sys.config().cores,
                                  [](SimCore &core) {
                                      return core.scheduler()
                                          .stats()
                                          .pendingOverflows.value();
                                  });
            }));
        }
        for (std::uint32_t sets : msr_sets) {
            SystemConfig cfg = baseCfg();
            cfg.dramCache.bc.msrSets = sets;
            cfg.dramCache.bc.msrEntriesPerSet = 2;
            tasks.push_back(makeTask(cfg, [](System &sys,
                                             Cell &cell) {
                cell.a = sys.dramCache()
                             ->msr()
                             .stats()
                             .setFullStalls.value();
            }));
        }
        for (std::uint32_t ways : assoc_ways) {
            SystemConfig cfg = baseCfg();
            cfg.dramCache.ways = ways;
            tasks.push_back(makeTask(cfg));
        }
        for (bool fp : fp_bits) {
            SystemConfig cfg = baseCfg();
            cfg.kind = SystemKind::AstriFlashNoPS;
            cfg.dramCacheRatio = 0.0002;
            cfg.warmupJobs = 50;
            cfg.measureJobs = 500;
            cfg.maxSimTicks = sim::milliseconds(400);
            cfg.forwardProgressBit = fp;
            tasks.push_back(makeTask(cfg, [](System &sys,
                                             Cell &cell) {
                const std::uint64_t cores = sys.config().cores;
                cell.a = sumCores(sys, cores, [](SimCore &core) {
                    return core.stats().syncMissStalls.value();
                });
                cell.b = sumCores(sys, cores, [](SimCore &core) {
                    return core.stats().switchOnMiss.value();
                });
            }));
        }
        for (bool fpc : footprint_modes) {
            SystemConfig cfg = baseCfg();
            cfg.dramCache.footprintEnabled = fpc;
            tasks.push_back(makeTask(cfg, [](System &sys,
                                             Cell &cell) {
                cell.a =
                    sys.dramCache()->bcStats().flashBytesRead.value();
                cell.b =
                    sys.dramCache()->fcStats().subPageMisses.value();
            }));
        }
    }
    for (std::uint32_t depth : bc_depths) {
        SystemConfig cfg = baseCfg();
        cfg.dramCache.channels.fcToBcDepth = depth;
        tasks.push_back(makeTask(cfg, [](System &sys, Cell &cell) {
            const auto &ch = sys.dramCache()->missChannel().stats();
            cell.a = ch.fullStalls.value();
            cell.b = ch.stallTicks.value();
        }));
    }

    const sim::SweepRunner runner(host_jobs);
    const std::vector<Cell> cells = runner.run(std::move(tasks));

    // The BC-depth rows sit at the tail of the cell vector whichever
    // mode ran; print them (and optionally export JSON) from there.
    const std::size_t n_depths =
        sizeof(bc_depths) / sizeof(bc_depths[0]);
    const std::size_t bc_at = cells.size() - n_depths;

    auto printBcDepth = [&] {
        std::printf("%s# Ablation 7: BC work-queue depth (fc_to_bc "
                    "channel bound, §IV-D)\n",
                    only_bc_depth ? "" : "\n");
        std::printf("%-10s %-14s %-14s %-16s %-14s\n", "depth",
                    "thr jobs/s", "p99 svc us", "full stalls",
                    "stall us");
        for (std::size_t i = 0; i < n_depths; ++i) {
            const Cell &cell = cells[bc_at + i];
            std::printf("%-10u %-14.0f %-14.1f %-16llu %-14.1f\n",
                        bc_depths[i], cell.r.throughputJobsPerSec,
                        cell.r.serviceUs(0.99),
                        static_cast<unsigned long long>(cell.a),
                        sim::toMicroseconds(cell.b));
        }
        std::printf(
            "# Expect: zero stalls at the default depth (the split "
            "is timing-neutral there)\n"
            "# and monotonically non-decreasing stall cycles as the "
            "queue shrinks below the\n"
            "# outstanding-miss window.\n");
    };

    auto writeBcJson = [&] {
        if (json_out.empty())
            return;
        std::ofstream out(json_out);
        if (!out) {
            std::fprintf(stderr,
                         "ablation_astriflash: cannot open '%s'\n",
                         json_out.c_str());
            std::exit(1);
        }
        sim::JsonWriter w(out);
        w.beginObject();
        w.field("benchmark", "bc_depth_sweep");
        w.field("workload", "tatp");
        w.field("cores", 4u);
        w.key("rows");
        w.beginArray();
        for (std::size_t i = 0; i < n_depths; ++i) {
            const Cell &cell = cells[bc_at + i];
            w.beginObject();
            w.field("depth", bc_depths[i]);
            w.field("full_stalls", cell.a);
            w.field("stall_ticks", cell.b);
            w.field("throughput_jobs_per_sec",
                    cell.r.throughputJobsPerSec);
            w.field("p99_service_us", cell.r.serviceUs(0.99));
            w.endObject();
        }
        w.endArray();
        w.endObject();
        out << "\n";
    };

    if (only_bc_depth) {
        printBcDepth();
        writeBcJson();
        return 0;
    }

    std::size_t at = 0;
    const double dram_thr = cells[at++].r.throughputJobsPerSec;

    std::printf("# Ablation 1: thread-switch cost (TATP, 4 cores; "
                "normalized throughput)\n");
    std::printf("%-14s %-12s %-12s\n", "switch cost", "thr%",
                "p99 svc us");
    for (sim::Ticks cost : switch_costs) {
        const Cell &cell = cells[at++];
        std::printf("%-14.1f %-12.1f %-12.1f\n",
                    sim::toMicroseconds(cost),
                    100.0 * cell.r.throughputJobsPerSec / dram_thr,
                    cell.r.serviceUs(0.99));
    }

    std::printf("\n# Ablation 2: pending-queue bound (p99 service)\n");
    std::printf("%-10s %-12s %-14s %-16s\n", "cap", "thr%",
                "p99 svc us", "overflows");
    for (std::uint32_t cap : pending_caps) {
        const Cell &cell = cells[at++];
        std::printf("%-10u %-12.1f %-14.1f %-16llu\n", cap,
                    100.0 * cell.r.throughputJobsPerSec / dram_thr,
                    cell.r.serviceUs(0.99),
                    static_cast<unsigned long long>(cell.a));
    }

    std::printf("\n# Ablation 3: Miss Status Row capacity "
                "(set-conflict stalls)\n");
    std::printf("%-12s %-12s %-14s %-14s\n", "MSR entries", "thr%",
                "p99 svc us", "set stalls");
    for (std::uint32_t sets : msr_sets) {
        const Cell &cell = cells[at++];
        std::printf("%-12u %-12.1f %-14.1f %-14llu\n", sets * 2,
                    100.0 * cell.r.throughputJobsPerSec / dram_thr,
                    cell.r.serviceUs(0.99),
                    static_cast<unsigned long long>(cell.a));
    }

    std::printf("\n# Ablation 4: DRAM-cache associativity "
                "(hit ratio at 3%% capacity)\n");
    std::printf("%-8s %-12s %-12s\n", "ways", "hit%", "thr%");
    for (std::uint32_t ways : assoc_ways) {
        const Cell &cell = cells[at++];
        std::printf("%-8u %-12.2f %-12.1f\n", ways,
                    100.0 * cell.r.dramCacheHitRatio,
                    100.0 * cell.r.throughputJobsPerSec / dram_thr);
    }

    std::printf("\n# Ablation 5: forward-progress bit under extreme "
                "cache thrash (0.02%% DRAM cache,\n"
                "# FIFO scheduling so resumes are delayed past the "
                "cache turnover time)\n");
    std::printf("%-8s %-12s %-14s %-14s %-12s\n", "FP bit",
                "thr jobs/s", "p99 svc us", "forced-sync",
                "switches");
    for (bool fp : fp_bits) {
        const Cell &cell = cells[at++];
        std::printf("%-8s %-12.0f %-14.1f %-14llu %-12llu\n",
                    fp ? "on" : "off", cell.r.throughputJobsPerSec,
                    cell.r.serviceUs(0.99),
                    static_cast<unsigned long long>(cell.a),
                    static_cast<unsigned long long>(cell.b));
    }
    std::printf("# The bit trades throughput for a *guarantee*: each "
                "resume retires at least one\n"
                "# instruction (forced-sync events). Without it, "
                "resumed threads whose page was\n"
                "# re-evicted bounce back to the pending queue "
                "(extra switches) with no bound on\n"
                "# how often — benign on average, livelock-prone "
                "under adversarial contention.\n");

    std::printf("\n# Ablation 6: footprint-cache mode (flash refill "
                "bandwidth, §II-A optimization)\n");
    std::printf("%-12s %-12s %-16s %-14s %-14s\n", "footprint",
                "thr%", "flash MB read", "sub-page miss",
                "p99 svc us");
    for (bool fpc : footprint_modes) {
        const Cell &cell = cells[at++];
        std::printf("%-12s %-12.1f %-16.2f %-14llu %-14.1f\n",
                    fpc ? "on" : "off",
                    100.0 * cell.r.throughputJobsPerSec / dram_thr,
                    static_cast<double>(cell.a) / 1e6,
                    static_cast<unsigned long long>(cell.b),
                    cell.r.serviceUs(0.99));
    }
    std::printf("# Expect: footprint mode cuts refill bytes for "
                "re-referenced pages at the cost of a\n"
                "# small sub-page miss rate.\n");

    printBcDepth();
    writeBcJson();
    return 0;
}
