/**
 * @file
 * Figure 3: analytical 99th-percentile latency (normalized to the
 * DRAM-only average service time) vs throughput (normalized to the
 * DRAM-only maximum) for the four system models.
 *
 * Setup from §III-A: every 10 µs of execution triggers a 50 µs flash
 * access. DRAM-only and Flash-Sync are M/M/1 (the request holds the
 * server for its whole lifetime); AstriFlash and OS-Swap are logical
 * M/M/k (thread switching overlaps the flash wait), with per-miss
 * overheads of ~0.2 µs and ~10 µs respectively.
 *
 * Expected shape: Flash-Sync saturates before 20% of DRAM-only
 * throughput (>80% degradation), OS-Swap near 50%, AstriFlash within
 * a few percent of DRAM-only; and an SLO of ~40x the average service
 * time admits operation within ~20% of DRAM-only throughput.
 *
 * A Monte Carlo cross-check of two analytic points is appended.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "queueing/mc_queue.hh"
#include "queueing/queueing.hh"

using namespace astriflash::queueing;

int
main()
{
    const SystemModel dram{10.0, 0.0, 0.0, false};
    const SystemModel sync{10.0, 50.0, 0.0, false};
    const SystemModel os_swap{10.0, 50.0, 10.0, true};
    const SystemModel astri{10.0, 50.0, 0.2, true};

    struct Row {
        const char *name;
        const SystemModel *m;
    };
    const Row rows[] = {{"DRAM-only", &dram},
                        {"AstriFlash", &astri},
                        {"OS-Swap", &os_swap},
                        {"Flash-Sync", &sync}};

    const double base_thr = dram.maxThroughput(); // 0.1 req/us
    const double base_svc = 10.0;                 // us

    std::printf("# Figure 3: p99 latency (x avg DRAM-only service) vs "
                "throughput (%% of DRAM-only max)\n");
    std::printf("%-12s", "load%");
    for (const Row &r : rows)
        std::printf(" %-12s", r.name);
    std::printf("\n");

    for (double load = 0.05; load < 1.0; load += 0.05) {
        const double lambda = load * base_thr;
        std::printf("%-12.0f", load * 100);
        for (const Row &r : rows) {
            const double p99 = r.m->p99ResponseUs(lambda);
            if (p99 < 0)
                std::printf(" %-12s", "unstable");
            else
                std::printf(" %-12.1f", p99 / base_svc);
        }
        std::printf("\n");
    }

    std::printf("\n# Max sustainable throughput (%% of DRAM-only)\n");
    for (const Row &r : rows) {
        std::printf("%-12s %.0f%%\n", r.name,
                    100.0 * r.m->maxThroughput() / base_thr);
    }

    // SLO observation: load achievable under a 40x SLO.
    std::printf("\n# Throughput at p99 <= 40x avg service (the "
                "paper's SLO rule of thumb)\n");
    for (const Row &r : rows) {
        double best = 0.0;
        for (double load = 0.01; load < 1.0; load += 0.01) {
            const double p99 =
                r.m->p99ResponseUs(load * base_thr);
            if (p99 > 0 && p99 / base_svc <= 40.0)
                best = load;
        }
        std::printf("%-12s %.0f%%\n", r.name, best * 100);
    }

    // Monte Carlo cross-check.
    std::printf("\n# Monte Carlo cross-check (analytic vs simulated "
                "p99, us)\n");
    {
        const double lambda = 0.6 / sync.occupancyUs();
        const MM1 m(lambda, 1.0 / sync.occupancyUs());
        const auto mc = simulateQueue(lambda,
                                      1.0 / sync.occupancyUs(), 1,
                                      300000,
                                      ServiceDist::Exponential, 5);
        std::printf("Flash-Sync@60%%(of its own max): analytic %.1f "
                    "mc %.1f\n",
                    m.responsePercentile(0.99), mc.p99Response);
    }
    {
        const double total = astri.totalUs();
        const auto k = static_cast<std::uint32_t>(
            std::ceil(total / astri.occupancyUs()));
        const double lambda = 0.85 / astri.occupancyUs();
        const MMk m(lambda, 1.0 / total, k);
        const auto mc = simulateQueue(lambda, 1.0 / total, k, 300000,
                                      ServiceDist::Exponential, 9);
        std::printf("AstriFlash@85%%: analytic %.1f mc %.1f\n",
                    m.responsePercentile(0.99), mc.p99Response);
    }
    return 0;
}
