/**
 * @file
 * Figure 9: simulated throughput of the evaluated configurations,
 * normalized to the DRAM-only system, for all seven workloads.
 *
 * Paper results to reproduce (averages): AstriFlash ~95%,
 * AstriFlash-Ideal ~96%, OS-Swap ~58%, Flash-Sync ~27%; TPCC is
 * AstriFlash's worst workload because its compute-heavy jobs lose the
 * most work per ROB flush.
 *
 * Scaled methodology: 8 cores, 1 GB dataset with a 3% DRAM cache
 * (capacity *ratio* and miss-interval calibration match §V-A; see
 * DESIGN.md for the scaling argument).
 */

#include <cstdio>
#include <map>
#include <vector>

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

double
runThroughput(SystemKind kind, workload::Kind wl)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = 8;
    cfg.workloadKind = wl;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = 800;
    cfg.measureJobs = 6000;
    System sys(cfg);
    return sys.run().throughputJobsPerSec;
}

} // namespace

int
main()
{
    const SystemKind kinds[] = {
        SystemKind::AstriFlash, SystemKind::AstriFlashIdeal,
        SystemKind::OsSwap, SystemKind::FlashSync};

    std::printf("# Figure 9: throughput normalized to DRAM-only "
                "(8 cores, 1 GiB dataset, 3%% DRAM cache)\n");
    std::printf("%-10s", "workload");
    for (SystemKind k : kinds)
        std::printf(" %-18s", systemKindName(k));
    std::printf("\n");

    std::map<SystemKind, double> sums;
    for (workload::Kind wl : workload::kAllKinds) {
        const double base =
            runThroughput(SystemKind::DramOnly, wl);
        std::printf("%-10s", workload::kindName(wl));
        for (SystemKind k : kinds) {
            const double norm = runThroughput(k, wl) / base;
            sums[k] += norm;
            std::printf(" %-18.2f", norm);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-10s", "gmean*");
    for (SystemKind k : kinds) {
        std::printf(" %-18.2f",
                    sums[k] / std::size(workload::kAllKinds));
    }
    std::printf("\n# (*arithmetic mean of normalized throughputs)\n");
    return 0;
}
