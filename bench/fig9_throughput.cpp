/**
 * @file
 * Figure 9: simulated throughput of the evaluated configurations,
 * normalized to the DRAM-only system, for all seven workloads.
 *
 * Paper results to reproduce (averages): AstriFlash ~95%,
 * AstriFlash-Ideal ~96%, OS-Swap ~58%, Flash-Sync ~27%; TPCC is
 * AstriFlash's worst workload because its compute-heavy jobs lose the
 * most work per ROB flush.
 *
 * Scaled methodology: 8 cores, 1 GB dataset with a 3% DRAM cache
 * (capacity *ratio* and miss-interval calibration match §V-A; see
 * DESIGN.md for the scaling argument).
 *
 * Every (workload, config) cell — the DRAM-only baselines included —
 * is an isolated simulation, so the whole grid runs as one parallel
 * SweepRunner batch behind --jobs.
 */

#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <vector>

#include "sim/json.hh"
#include "sim/option_parser.hh"
#include "sim/sweep_runner.hh"

#include "core/fabric_options.hh"
#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

std::uint64_t measure_jobs = 6000;
FabricOptions fabric;

SystemConfig
cellCfg(SystemKind kind, workload::Kind wl)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = 8;
    cfg.workloadKind = wl;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = 800;
    cfg.measureJobs = measure_jobs;
    fabric.apply(cfg);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint32_t host_jobs = 1;
    std::string stats_json;
    sim::OptionParser opts(
        "fig9_throughput",
        "Figure 9: throughput of every configuration normalized to "
        "DRAM-only across the seven workloads.");
    opts.addUint("measure-jobs", &measure_jobs,
                 "measured jobs per cell");
    opts.addUint32("jobs", &host_jobs,
                   "host threads running cells in parallel "
                   "(0 = all hardware threads)");
    opts.addString("stats-json", &stats_json,
                   "write the normalized grid as JSON to FILE");
    fabric.addTo(opts);
    opts.parseOrExit(argc, argv);

    const SystemKind kinds[] = {
        SystemKind::AstriFlash, SystemKind::AstriFlashIdeal,
        SystemKind::OsSwap, SystemKind::FlashSync};

    // One task per grid cell: column 0 is the DRAM-only baseline the
    // row normalizes against.
    std::vector<std::function<double()>> tasks;
    for (workload::Kind wl : workload::kAllKinds) {
        for (int col = -1;
             col < static_cast<int>(std::size(kinds)); ++col) {
            const SystemKind kind =
                col < 0 ? SystemKind::DramOnly : kinds[col];
            tasks.emplace_back([kind, wl] {
                System sys(cellCfg(kind, wl));
                return sys.run().throughputJobsPerSec;
            });
        }
    }
    const sim::SweepRunner runner(host_jobs);
    const std::vector<double> thr = runner.run(std::move(tasks));

    std::printf("# Figure 9: throughput normalized to DRAM-only "
                "(8 cores, 1 GiB dataset, 3%% DRAM cache)\n");
    std::printf("%-10s", "workload");
    for (SystemKind k : kinds)
        std::printf(" %-18s", systemKindName(k));
    std::printf("\n");

    const std::size_t row_w = std::size(kinds) + 1;
    std::map<SystemKind, double> sums;
    std::vector<std::vector<double>> rows;
    for (std::size_t r = 0; r < std::size(workload::kAllKinds); ++r) {
        const double base = thr[r * row_w];
        std::printf("%-10s",
                    workload::kindName(workload::kAllKinds[r]));
        rows.emplace_back();
        for (std::size_t i = 0; i < std::size(kinds); ++i) {
            const double norm = thr[r * row_w + 1 + i] / base;
            sums[kinds[i]] += norm;
            rows.back().push_back(norm);
            std::printf(" %-18.2f", norm);
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-10s", "gmean*");
    for (SystemKind k : kinds) {
        std::printf(" %-18.2f",
                    sums[k] / std::size(workload::kAllKinds));
    }
    std::printf("\n# (*arithmetic mean of normalized throughputs)\n");

    if (!stats_json.empty()) {
        std::ofstream out(stats_json);
        if (!out) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         stats_json.c_str());
            return 1;
        }
        sim::JsonWriter w(out);
        w.beginObject();
        w.field("benchmark", "fig9_throughput");
        w.field("normalized_to", "dram");
        w.key("rows");
        w.beginArray();
        for (std::size_t r = 0; r < rows.size(); ++r) {
            w.beginObject();
            w.field("workload",
                    workload::kindName(workload::kAllKinds[r]));
            for (std::size_t i = 0; i < std::size(kinds); ++i)
                w.field(systemKindName(kinds[i]), rows[r][i]);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        out << "\n";
    }
    return 0;
}
