/**
 * @file
 * google-benchmark micro suites for the load-bearing primitives:
 * event queue, histogram, Zipfian draws, set-associative lookup, MSR
 * operations, DRAM-cache hit path, ASO rename/store, and real
 * user-level thread switches (the artifact behind the paper's 100 ns
 * switch claim — here measured as host-machine ucontext switches).
 */

#include <benchmark/benchmark.h>

#include "core/dram_cache.hh"
#include "core/miss_status_row.hh"
#include "cpu/aso_engine.hh"
#include "flash/flash_device.hh"
#include "mem/address_map.hh"
#include "mem/set_assoc_cache.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "uthread/uthread.hh"
#include "workload/zipfian.hh"

using namespace astriflash;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        eq.scheduleIn(1, [&fired] { ++fired; });
        eq.runSteps(1);
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_HistogramSample(benchmark::State &state)
{
    sim::Histogram h;
    sim::Rng rng(1);
    for (auto _ : state)
        h.sample(rng.next() & 0xffffffff);
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramSample);

static void
BM_HistogramPercentile(benchmark::State &state)
{
    sim::Histogram h;
    sim::Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        h.sample(rng.next() & 0xffffff);
    for (auto _ : state)
        benchmark::DoNotOptimize(h.percentile(0.99));
}
BENCHMARK(BM_HistogramPercentile);

static void
BM_ZipfianNext(benchmark::State &state)
{
    workload::ZipfianGenerator zipf(
        static_cast<std::uint64_t>(state.range(0)), 0.99, true, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next());
}
BENCHMARK(BM_ZipfianNext)->Arg(1 << 16)->Arg(1 << 24);

static void
BM_CacheLookupHit(benchmark::State &state)
{
    mem::SetAssocCache c("c", 1 << 20, 64, 8);
    for (std::uint64_t a = 0; a < (1 << 20); a += 64)
        c.fill(a);
    sim::Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(rng.uniformInt(1 << 14) * 64));
    }
}
BENCHMARK(BM_CacheLookupHit);

static void
BM_MsrAllocateFree(benchmark::State &state)
{
    core::MissStatusRow msr("m", 128, 8);
    std::uint64_t page = 0;
    for (auto _ : state) {
        msr.allocate(mem::PageNum(page));
        msr.free(mem::PageNum(page));
        ++page;
    }
}
BENCHMARK(BM_MsrAllocateFree);

static void
BM_DramCacheHitPath(benchmark::State &state)
{
    sim::EventQueue eq;
    mem::AddressMap amap(64 << 20, 256 << 20);
    flash::FlashConfig fcfg =
        flash::FlashConfig::forCapacity(512 << 20);
    flash::FlashDevice flash("f", fcfg, (256 << 20) / 4096);
    core::DramCacheConfig cfg;
    cfg.capacityBytes = 8 << 20;
    core::DramCache dc(eq, "dc", cfg, flash, amap);
    for (std::uint64_t p = 0; p < cfg.capacityBytes / 4096; ++p)
        dc.prewarmPage(amap.flashRange().base + p * 4096);
    sim::Rng rng(3);
    sim::Ticks t = 0;
    for (auto _ : state) {
        const mem::Addr pa = amap.flashRange().base +
                             rng.uniformInt(2048) * 4096;
        benchmark::DoNotOptimize(dc.access(pa, false, t, 0));
        t += 1000000; // keep banks idle: measures the model cost
    }
}
BENCHMARK(BM_DramCacheHitPath);

static void
BM_AsoRenameStoreComplete(benchmark::State &state)
{
    cpu::OoOConfig cfg;
    cpu::AsoEngine engine(cfg);
    std::uint32_t reg = 0;
    for (auto _ : state) {
        engine.dispatchStore(reg);
        engine.writeReg(reg % cfg.archRegs);
        engine.completeOldestStore();
        ++reg;
    }
}
BENCHMARK(BM_AsoRenameStoreComplete);

static void
BM_UthreadSwitch(benchmark::State &state)
{
    // Measures a full yield round-trip (worker -> scheduler ->
    // worker): two ucontext switches. The paper's 100 ns switch is
    // the hardware-assisted single switch; this is the host-software
    // analog.
    uthread::UScheduler sched;
    bool stop = false;
    std::uint64_t switches = 0;
    sched.spawn([&] {
        while (!stop) {
            sched.yield();
            ++switches;
        }
    });
    sched.spawn([&] {
        for (auto _ : state) {
            sched.yield();
        }
        stop = true;
    });
    sched.run();
    state.counters["roundtrips"] =
        static_cast<double>(switches);
}
BENCHMARK(BM_UthreadSwitch);

static void
BM_FlashReadModel(benchmark::State &state)
{
    flash::FlashConfig cfg = flash::FlashConfig::forCapacity(1 << 30);
    flash::FlashDevice dev("f", cfg, (1 << 30) / 4096);
    sim::Rng rng(4);
    sim::Ticks t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            dev.read(flash::Lpn(rng.uniformInt(100000)), t));
        t += sim::microseconds(10);
    }
}
BENCHMARK(BM_FlashReadModel);

BENCHMARK_MAIN();
