/**
 * @file
 * detshake — schedule-perturbation determinism harness.
 *
 * A correct discrete-event simulation must produce byte-identical
 * stats whatever order same-tick events happen to fire in and however
 * deep its (never-stalling) channels are: any divergence means some
 * model consulted an ordering accident — unordered-container
 * iteration, address-dependent keys, tie-break luck — and would break
 * the SweepRunner byte-identity contract today and the conservative
 * parallel engine tomorrow (DESIGN.md §14).
 *
 * For every committed golden case (tools/golden_cases.hh) detshake
 * reruns the simulation under
 *
 *  1. a seeded random permutation of same-tick event tie-breaking
 *     (sim::EventQueue::setTiePerturbation; the hook is compiled out
 *     of plain Release, so this needs a Debug or
 *     -DASTRIFLASH_CHECKS=ON build), and
 *  2. seeded channel-depth jitter inside the timing-neutral band
 *     (every depth stays far above the peak occupancy any config can
 *     reach, so accept ticks cannot move), and
 *
 *  3. a sweep over --host-jobs values (the conservative parallel
 *     engine, sim::ParallelEngine): partitioned domain execution must
 *     reproduce the single-queue bytes exactly, alone and combined
 *     with the perturbations above (works in any build — the engine
 *     is not gated on checks),
 *
 * and byte-compares the full stats JSON against the committed golden
 * file. Exit 0: every ordering reproduced the goldens. Exit 1: a
 * divergence (the offending case/seed and the first differing byte
 * are reported, and the actual output is kept for diffing). Exit 77:
 * the tie-break hook is compiled out and --jitter-only was not given
 * (ctest treats 77 as SKIP).
 *
 *   detshake --golden-dir=tests/golden --seeds=8
 *   detshake --golden-dir=tests/golden --seeds=4 --jitter-only
 *   detshake --case=astriflash_tatp --seeds=2 --out-dir=/tmp/shake
 *   detshake --golden-dir=tests/golden --seeds=2 --host-jobs=1,2,4
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/option_parser.hh"

#include "golden_cases.hh"

using namespace astriflash;
using namespace astriflash::core;
using namespace astriflash::tools;

namespace {

/** splitmix64, the jitter's only randomness source (host-seedless). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * A jittered channel depth in the timing-neutral band [8 Ki, 256 Ki]:
 * every configuration's peak channel occupancy is bounded by its MSR
 * capacity (1024 entries cache-wide), so no depth in the band can ever
 * stall a push and the stats must not move.
 */
std::uint32_t
jitterDepth(std::uint64_t key)
{
    return 8192u << (mix64(key) % 6);
}

struct Mismatch {
    std::string caseName;
    std::string variant;
};

/** Render one (case, tie seed, jitter seed, host jobs) run to JSON. */
std::string
renderRun(const GoldenCase &gc, std::uint64_t tie_seed,
          std::uint64_t jitter_seed, unsigned host_jobs)
{
    SystemConfig cfg = goldenCaseConfig(gc);
    cfg.tieBreakSeed = tie_seed;
    cfg.hostJobs = host_jobs;
    if (jitter_seed != 0) {
        ChannelConfig &ch = cfg.dramCache.channels;
        ch.fcToBcDepth = jitterDepth(jitter_seed * 3 + 0);
        ch.bcToFlashDepth = jitterDepth(jitter_seed * 3 + 1);
        ch.bcToFcDepth = jitterDepth(jitter_seed * 3 + 2);
    }
    System sys(cfg);
    const RunResults r = sys.run();
    std::ostringstream os;
    writeGoldenJson(os, gc, r, sys);
    return os.str();
}

/** Parse a comma-separated --host-jobs list ("1,2,4"). */
bool
parseJobsList(const std::string &value, std::vector<unsigned> *out)
{
    out->clear();
    std::istringstream in(value);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (item.empty())
            return false;
        char *end = nullptr;
        const unsigned long v = std::strtoul(item.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || v == 0)
            return false;
        out->push_back(static_cast<unsigned>(v));
    }
    return !out->empty();
}

/** Report the first differing byte between @p got and @p want. */
void
reportDiff(const std::string &got, const std::string &want)
{
    const std::size_t n = std::min(got.size(), want.size());
    std::size_t i = 0;
    while (i < n && got[i] == want[i])
        ++i;
    std::size_t line = 1;
    for (std::size_t j = 0; j < i; ++j) {
        if (want[j] == '\n')
            ++line;
    }
    std::fprintf(stderr,
                 "  first divergence at byte %zu (line %zu); sizes "
                 "%zu vs golden %zu\n",
                 i, line, got.size(), want.size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string golden_dir = "tests/golden";
    std::string out_dir;
    std::string only_case;
    std::uint64_t seeds = 8;
    bool jitter_only = false;
    bool list = false;
    std::vector<unsigned> jobs_list{1};

    sim::OptionParser opts(
        "detshake",
        "Rerun the golden configs under perturbed same-tick event "
        "ordering and jittered channel depths; require byte-identical "
        "stats JSON.");
    opts.addString("golden-dir", &golden_dir,
                   "directory holding the committed <case>.json files");
    opts.addString("out-dir", &out_dir,
                   "where to keep diverging outputs (default: skip)");
    opts.addString("case", &only_case, "restrict to one case name");
    opts.addUint("seeds", &seeds,
                 "perturbation seeds per case (1..N, 0 = baseline only)");
    opts.addFlag("jitter-only", &jitter_only,
                 "skip tie-break perturbation (works in any build)");
    opts.addCustom("host-jobs", "LIST",
                   "comma-separated host-jobs values to sweep "
                   "(default 1; e.g. 1,2,4)",
                   [&jobs_list](const std::string &value) {
                       return parseJobsList(value, &jobs_list);
                   });
    opts.addFlag("list", &list, "print the known case names");
    opts.parseOrExit(argc, argv);

    if (list) {
        for (const GoldenCase &gc : kGoldenCases)
            std::printf("%s\n", gc.name);
        return 0;
    }

    const bool perturb = !jitter_only;
    if (perturb && !sim::EventQueue::tiePerturbationCompiledIn()) {
        std::fprintf(stderr,
                     "detshake: the tie-break perturbation hook is "
                     "compiled out (plain Release); rebuild with "
                     "-DASTRIFLASH_CHECKS=ON or pass --jitter-only\n");
        return 77;
    }

    std::vector<Mismatch> bad;
    std::uint64_t runs = 0;
    for (const GoldenCase &gc : kGoldenCases) {
        if (!only_case.empty() && only_case != gc.name)
            continue;

        const std::string golden_path =
            golden_dir + "/" + gc.name + ".json";
        std::ifstream in(golden_path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "detshake: cannot read '%s'\n",
                         golden_path.c_str());
            return 2;
        }
        std::ostringstream slurp;
        slurp << in.rdbuf();
        const std::string want = slurp.str();

        for (const unsigned hj : jobs_list) {
            for (std::uint64_t s = 0; s <= seeds; ++s) {
                // s == 0 is the unperturbed baseline (also proves the
                // harness itself reproduces the golden); s >= 1 shakes
                // the tie-breaking and the channel depths together.
                // Each host-jobs value reruns the whole ladder: the
                // partitioned engine must survive every perturbation
                // the single-queue path does.
                const std::uint64_t tie = perturb ? s : 0;
                std::string variant =
                    s == 0 ? std::string("baseline")
                           : (perturb ? "tie+jitter seed "
                                      : "jitter seed ") +
                                 std::to_string(s);
                if (hj != 1)
                    variant += " @ host-jobs " + std::to_string(hj);
                const std::string got = renderRun(gc, tie, s, hj);
                ++runs;
                if (got == want) {
                    std::printf("ok   %-28s %s\n", gc.name,
                                variant.c_str());
                    continue;
                }
                std::printf("FAIL %-28s %s\n", gc.name,
                            variant.c_str());
                reportDiff(got, want);
                if (!out_dir.empty()) {
                    const std::string path =
                        out_dir + "/" + gc.name + ".seed" +
                        std::to_string(s) + ".hj" +
                        std::to_string(hj) + ".json";
                    std::ofstream out(path, std::ios::binary);
                    out << got;
                    std::fprintf(stderr,
                                 "  actual output kept at %s\n",
                                 path.c_str());
                }
                bad.push_back(Mismatch{gc.name, variant});
            }
        }
    }

    if (!bad.empty()) {
        std::fprintf(stderr,
                     "detshake: %zu of %llu runs diverged from the "
                     "goldens — the simulation depends on same-tick "
                     "ordering or channel depth\n",
                     bad.size(),
                     static_cast<unsigned long long>(runs));
        return 1;
    }
    std::printf("detshake: %llu runs, all byte-identical to the "
                "goldens\n",
                static_cast<unsigned long long>(runs));
    return 0;
}
