/**
 * @file
 * The six fixed-seed golden torture configurations and their JSON
 * serialisation, shared by the golden_stats tool and the
 * test_fcbc_suite regression so the two can never drift apart: both
 * must produce byte-identical output for the files under
 * tests/golden/.
 */

#ifndef ASTRIFLASH_TOOLS_GOLDEN_CASES_HH
#define ASTRIFLASH_TOOLS_GOLDEN_CASES_HH

#include <cstdint>
#include <ostream>

#include "sim/json.hh"

#include "core/system.hh"

namespace astriflash::tools {

struct GoldenCase {
    const char *name;
    core::SystemKind kind;
    workload::Kind workload;
    std::uint64_t seed;
    bool footprint;
    bool openLoop;
    /** Pipelined split mode (--fc-pipeline, 4 BC shards over 4 flash
     *  devices): its own golden set, byte-identical across --host-jobs
     *  but NOT comparable to the fused default. */
    bool split = false;
};

// Mirrors kTortureCases in tests/test_invariants.cpp: one case per
// system-kind/workload mix, fixed seeds, tatp both closed and open.
// The split_* cases rerun a representative subset with the pipelined
// miss path and sharded exec groups (DESIGN.md §17).
constexpr GoldenCase kGoldenCases[] = {
    {"astriflash_tatp", core::SystemKind::AstriFlash,
     workload::Kind::Tatp, 1, false, false},
    {"astriflash_silo_footprint", core::SystemKind::AstriFlash,
     workload::Kind::Silo, 2, true, false},
    {"nops_tpcc", core::SystemKind::AstriFlashNoPS,
     workload::Kind::Tpcc, 3, false, false},
    {"nodp_hashtable", core::SystemKind::AstriFlashNoDP,
     workload::Kind::HashTable, 4, false, false},
    {"flashsync_arrayswap", core::SystemKind::FlashSync,
     workload::Kind::ArraySwap, 5, false, false},
    {"astriflash_tatp_openloop", core::SystemKind::AstriFlash,
     workload::Kind::Tatp, 6, false, true},
    {"split_astriflash_tatp", core::SystemKind::AstriFlash,
     workload::Kind::Tatp, 1, false, false, true},
    {"split_astriflash_silo_footprint", core::SystemKind::AstriFlash,
     workload::Kind::Silo, 2, true, false, true},
    {"split_nops_tpcc", core::SystemKind::AstriFlashNoPS,
     workload::Kind::Tpcc, 3, false, false, true},
    {"split_astriflash_tatp_openloop", core::SystemKind::AstriFlash,
     workload::Kind::Tatp, 6, false, true, true},
};

/** The smallCfg used by the torture suite, verbatim. */
inline core::SystemConfig
goldenCaseConfig(const GoldenCase &gc)
{
    core::SystemConfig cfg;
    cfg.kind = gc.kind;
    cfg.cores = 2;
    cfg.workloadKind = gc.workload;
    cfg.workload.datasetBytes = 64ull << 20;
    cfg.warmupJobs = 100;
    cfg.measureJobs = 400;
    cfg.invariantInterval = sim::microseconds(50);
    cfg.seed = gc.seed;
    if (gc.footprint)
        cfg.dramCache.footprintEnabled = true;
    if (gc.openLoop)
        cfg.meanInterarrival = sim::microseconds(5);
    if (gc.split) {
        cfg.dramCache.fc.pipeline = true;
        cfg.dramCache.bc.shards = 4;
        // Shards must divide devices so each page-interleaved shard's
        // flash slice is domain-private (the facade enforces it).
        cfg.dramCache.fabric.devices = 4;
    }
    return cfg;
}

/** Headline results plus the full stats tree, golden-file format. */
inline void
writeGoldenJson(std::ostream &os, const GoldenCase &gc,
                const core::RunResults &r, const core::System &sys)
{
    sim::JsonWriter w(os);
    w.beginObject();

    w.key("config");
    w.beginObject();
    w.field("case", gc.name);
    w.field("kind", core::systemKindName(gc.kind));
    w.field("workload", workload::kindName(gc.workload));
    w.field("seed", gc.seed);
    w.endObject();

    w.key("results");
    w.beginObject();
    w.field("jobs", r.jobs);
    w.field("throughput_jobs_per_sec", r.throughputJobsPerSec);
    w.field("avg_service_us", r.avgServiceUs());
    w.field("p50_service_us", r.serviceUs(0.50));
    w.field("p99_service_us", r.serviceUs(0.99));
    w.field("p999_service_us", r.serviceUs(0.999));
    w.field("avg_response_us", r.avgResponseUs());
    w.field("p99_response_us", r.responseUs(0.99));
    w.field("dram_cache_hit_ratio", r.dramCacheHitRatio);
    w.field("avg_exec_between_misses_us", r.avgExecBetweenMissesUs);
    w.field("flash_reads", r.flashReads);
    w.field("flash_writes", r.flashWrites);
    w.field("gc_blocked_reads", r.gcBlockedReads);
    w.field("shootdowns", r.shootdowns);
    w.field("peak_outstanding_misses", r.peakOutstandingMisses);
    w.endObject();

    w.key("stats");
    sys.statsRegistry().writeJson(w);

    w.endObject();
    os << "\n";
}

} // namespace astriflash::tools

#endif // ASTRIFLASH_TOOLS_GOLDEN_CASES_HH
