/**
 * @file
 * aflint: AstriFlash repository lint.
 *
 * A fast, dependency-free token/regex scan that enforces the
 * simulator's determinism and hygiene rules over src/, tools/, bench/
 * and tests/ (see DESIGN.md §8 for the rationale behind each rule):
 *
 *   AF001  no wall-clock or libc randomness in simulator code
 *   AF002  no raw new/delete expressions (use RAII owners)
 *   AF003  no stdout writes from library code under src/
 *   AF004  every stats registration carries a description
 *   AF005  every header has an include guard
 *   AF006  no signed integer truncation of Tick values
 *   AF007  no bare assert() under src/ (use ASTRI_ASSERT / SIM_CHECK)
 *
 * v2 adds a lightweight tokenizer over the stripped text so the unit-
 * safety rules can reason about token sequences instead of raw lines:
 *
 *   AF008  raw-integer page/set/way/block/lpn parameters in public
 *          headers under src/ (use the strong types from
 *          sim/strong_types.hh)
 *   AF009  implicit Ticks<->Cycles mixing: a Ticks variable
 *          initialized from a bare cycle-count identifier (or vice
 *          versa) without going through ClockDomain
 *   AF010  pageNumber()/blockNumber() results stored into plain
 *          uint64_t / Addr, erasing the unit the call just attached
 *   AF011  strong-type .raw() escapes outside the allowlisted
 *          conversion headers (see kRawEscapeAllowlist)
 *   AF012  log2i()/alignDown()/alignUp() called with a literal that
 *          is not a power of two (rejected at runtime by SIM_CHECK_CE)
 *   AF013  direct cross-component reference inside the split DRAM
 *          cache: the frontside and backside controllers may only
 *          communicate through sim::BoundedChannel messages, so
 *          naming the opposite controller (or a structure it owns,
 *          or the flash device / system layers) from
 *          frontside_controller.* / backside_controller.* bypasses
 *          the channel contract. The DramCache facade is the one
 *          allowlisted composition point.
 *   AF014  concrete flash device type (FlashDevice / ZnsDevice / Ftl)
 *          named from src/core: core code talks to storage only
 *          through the abstract flash::Backend interface; the model
 *          is selected by flash::BackendKind and instantiated inside
 *          the flash fabric.
 *
 * v3 adds the nondeterminism rules backing the detshake determinism
 * contract (DESIGN.md §14): the simulation must produce byte-identical
 * stats under any same-tick event permutation, so no model may consult
 * an ordering accident:
 *
 *   AF015  range-for iteration over a std::unordered_* container in
 *          src/: hash-table iteration order is
 *          implementation-defined, so any model decision made inside
 *          such a loop depends on hashing accidents. Iterate a sorted
 *          copy, keep a side order, or annotate walks whose body is
 *          provably order-insensitive (pure audits / commutative
 *          accumulation).
 *   AF016  pointer-keyed associative container in src/: ordering (and
 *          unordered hashing) over raw addresses varies run to run
 *          with the allocator; key on a stable identity (id, page
 *          number) instead.
 *   AF017  mutable namespace-scope / static-storage state in src/:
 *          hidden globals leak simulation state across Systems and
 *          break SweepRunner's isolated-replica byte-identity. The
 *          reviewed owners (checks arming flag, tracer, uthread
 *          current pointer) are allowlisted in kStateOwners.
 *   AF018  sim::BoundedChannel constructed without a declared
 *          ChannelContract: every channel must state its minimum
 *          push-to-consume latency (the lookahead manifest) so the
 *          causality auditor can certify it and a conservative
 *          parallel engine could schedule against it.
 *   AF019  scheduling through another component's eventQueue()
 *          accessor in src/ (outside src/sim/): under the domain
 *          partition (DESIGN.md §15) each EventQueue belongs to one
 *          domain, so `other.eventQueue().schedule(...)` injects
 *          work into a queue that may be executing on a different
 *          host thread. Components schedule only on their own held
 *          queue reference; cross-domain work crosses a contracted
 *          BoundedChannel (or ParallelEngine::post).
 *
 * v4 adds cross-TU domain-ownership rules (DESIGN.md §16). A second
 * global pass builds a member/call access map from the class bodies in
 * src/ headers, assigns each known component class to its execution
 * domain ("fc" = frontside + cores + facade + fabric, "bc" = backside
 * shard), and flags state and call paths that escape the domain
 * partition — the exact couplings that force System to fuse every
 * domain into one exec group:
 *
 *   AF020  a component class holding a raw pointer/reference to a
 *          component owned by a different domain. The channel seam
 *          (sim::BoundedChannel members) and the DramCache facade
 *          (dram_cache.*, the allowlisted composition point) are
 *          exempt.
 *   AF021  a direct call of a method attributable to exactly one
 *          controller (FrontsideController / BacksideController)
 *          from outside that controller's own files and outside
 *          dram_cache.*'s allowlisted pump: such calls cross the
 *          FC<->BC domain boundary synchronously, bypassing the
 *          channels.
 *   AF022  mutable shared state reachable from two domains without an
 *          owning declaration: a non-component type held by value or
 *          reference from classes in more than one domain, where a
 *          mutable reference holder's domain differs from the value
 *          owner's (page tags, DRAM model, footprint masks — the
 *          measured worklist of the exec-group split).
 *   AF023  a ParallelEngine::addLink watermark lambda capturing
 *          foreign-domain state by reference: the sanctioned pattern
 *          reads a channel's lock-free stamp watermark (acquire
 *          load), never a by-reference capture of mutable state.
 *
 * `--ownership-report=PREFIX` additionally writes the measured
 * domain-coupling graph (PREFIX.json + PREFIX.dot) enumerating every
 * synchronous FC<->BC edge: allowlisted facade calls, cross-domain
 * shared-state holders (including baselined ones), channel-seam
 * members, and watermark lambdas. DESIGN.md §16 commits this as the
 * exec-group-split worklist.
 *
 * Comments and string literals are stripped (newlines preserved)
 * before matching, so prose never trips a rule. Intentional
 * exceptions are annotated in a comment on the offending line:
 *
 *     // aflint-allow(AF001): host-time library by design
 *
 * or for a whole file, anywhere in it:
 *
 *     // aflint-allow-file(AF001): <reason>
 *
 * Reviewed long-lived exceptions live in tools/aflint/baseline.json
 * instead of inline annotations: findings keyed by (rule, file,
 * token) are suppressed when the baseline (auto-loaded from
 * <root>/tools/aflint/baseline.json, or --baseline=FILE) lists them.
 * --write-baseline regenerates the file from the current findings;
 * --check additionally fails on stale entries that no longer match
 * anything; --no-baseline disables suppression entirely.
 *
 * Exit status: 0 when clean, 1 when findings were reported, 2 on
 * usage or I/O errors. --format=json emits one JSON object per
 * finding (JSONL) for machine consumption in CI.
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    /** Stable identity inside the file (a declared name, member, or
     *  method) — the baseline key, so entries survive line drift. */
    std::string token;

    Finding(std::string f, int l, std::string r, std::string m,
            std::string t = {})
        : file(std::move(f)), line(l), rule(std::move(r)),
          message(std::move(m)), token(std::move(t))
    {
    }
};

struct Options {
    std::string root = ".";
    std::vector<std::string> paths; ///< Scan roots relative to root.
    std::string sinceRef;           ///< Diff mode: scan changed files.
    std::string baselinePath;       ///< Override baseline location.
    std::string reportPrefix;       ///< --ownership-report=PREFIX.
    bool json = false;
    bool defaultExcludes = true;
    bool noBaseline = false;
    bool writeBaseline = false;
    bool checkBaseline = false; ///< Stale baseline entries fail.
};

/** One lint rule: a regex applied per line of the stripped source. */
struct LineRule {
    const char *id;
    const char *message;
    std::regex pattern;
    bool srcOnly; ///< Only enforced for files under src/.
};

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
           ext == ".h" || ext == ".hpp";
}

bool
isHeader(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".h" || ext == ".hpp";
}

/**
 * Blank out comments, string literals and char literals, preserving
 * newlines so findings keep their line numbers. Quote characters are
 * kept so argument-list scans still see the (emptied) literals.
 */
std::string
stripCommentsAndStrings(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    std::size_t i = 0;
    const std::size_t n = in.size();

    auto keepNewlines = [&out](const std::string &s, std::size_t from,
                               std::size_t to) {
        for (std::size_t k = from; k < to; ++k)
            out.push_back(s[k] == '\n' ? '\n' : ' ');
    };

    while (i < n) {
        const char c = in[i];
        if (c == '/' && i + 1 < n && in[i + 1] == '/') {
            const std::size_t end = in.find('\n', i);
            const std::size_t stop = end == std::string::npos ? n : end;
            keepNewlines(in, i, stop);
            i = stop;
        } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
            const std::size_t end = in.find("*/", i + 2);
            const std::size_t stop =
                end == std::string::npos ? n : end + 2;
            keepNewlines(in, i, stop);
            i = stop;
        } else if (c == '"' &&
                   (i == 0 ||
                    !(std::isalnum(static_cast<unsigned char>(
                          in[i - 1])) ||
                      in[i - 1] == '_') ||
                    in[i - 1] == 'R')) {
            // Raw string literal: R"delim( ... )delim".
            if (i > 0 && in[i - 1] == 'R') {
                std::size_t p = i + 1;
                std::string delim;
                while (p < n && in[p] != '(')
                    delim.push_back(in[p++]);
                const std::string closer = ")" + delim + "\"";
                const std::size_t end = in.find(closer, p);
                const std::size_t stop = end == std::string::npos
                                             ? n
                                             : end + closer.size();
                out.push_back('"');
                keepNewlines(in, i + 1, stop > i + 1 ? stop - 1 : i + 1);
                if (stop > i + 1)
                    out.push_back('"');
                i = stop;
                continue;
            }
            out.push_back('"');
            ++i;
            while (i < n && in[i] != '"') {
                if (in[i] == '\\' && i + 1 < n)
                    ++i;
                out.push_back(in[i] == '\n' ? '\n' : ' ');
                ++i;
            }
            if (i < n) {
                out.push_back('"');
                ++i;
            }
        } else if (c == '\'' &&
                   !(i > 0 &&
                     std::isalnum(static_cast<unsigned char>(
                         in[i - 1])) &&
                     i + 1 < n &&
                     std::isalnum(static_cast<unsigned char>(
                         in[i + 1])))) {
            // The guard keeps digit separators (2'500'000ull) from
            // opening a phantom char literal that would swallow
            // newlines and skew every finding's line number.
            out.push_back('\'');
            ++i;
            while (i < n && in[i] != '\'') {
                if (in[i] == '\\' && i + 1 < n)
                    ++i;
                out.push_back(' ');
                ++i;
            }
            if (i < n) {
                out.push_back('\'');
                ++i;
            }
        } else {
            out.push_back(c);
            ++i;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

/**
 * Suppressions live in the raw (unstripped) text: same-line
 * aflint-allow(AFnnn), preceding-line aflint-allow-next-line(AFnnn),
 * and per-file aflint-allow-file(AFnnn).
 */
struct Suppressions {
    std::set<std::pair<int, std::string>> lines;
    std::set<std::string> wholeFile;

    bool
    allows(int line, const std::string &rule) const
    {
        return wholeFile.count(rule) != 0 ||
               lines.count({line, rule}) != 0;
    }
};

Suppressions
collectSuppressions(const std::vector<std::string> &raw_lines)
{
    static const std::regex allow_re(
        "aflint-allow(-file|-next-line)?\\((AF[0-9]{3})\\)");
    Suppressions sup;
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
        auto begin = std::sregex_iterator(raw_lines[i].begin(),
                                          raw_lines[i].end(), allow_re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::string scope = (*it)[1].str();
            const std::string rule = (*it)[2].str();
            if (scope == "-file")
                sup.wholeFile.insert(rule);
            else if (scope == "-next-line")
                sup.lines.insert({static_cast<int>(i) + 2, rule});
            else
                sup.lines.insert({static_cast<int>(i) + 1, rule});
        }
    }
    return sup;
}

const std::vector<LineRule> &
lineRules()
{
    static const std::vector<LineRule> rules = {
        {"AF001",
         "wall-clock / libc randomness breaks determinism; use the "
         "event queue's tick clock and sim::Rng",
         std::regex("std::chrono::(system|steady|high_resolution)_"
                    "clock|\\bgettimeofday\\b|\\bclock_gettime\\b|"
                    "\\btime\\s*\\(|\\brand\\s*\\(|\\bsrand\\s*\\(|"
                    "\\brandom\\s*\\("),
         false},
        {"AF002",
         "raw new/delete; own memory with std::unique_ptr / "
         "containers",
         std::regex("\\bnew\\s+[A-Za-z_(:<]|\\bdelete\\s*(\\[\\s*\\]"
                    "\\s*)?[A-Za-z_(:*]"),
         false},
        {"AF003",
         "stdout write from library code; report through stats / "
         "ASTRI_WARN instead",
         std::regex("std::cout\\b|\\bprintf\\s*\\(|\\bputs\\s*\\("),
         true},
        {"AF006",
         "signed integer truncation of a Tick value; Ticks are "
         "uint64 picoseconds",
         std::regex("static_cast<(int|long|std::int32_t|std::int64_t)"
                    ">\\s*\\([^()]*([tT]ick|curTick\\(\\))"),
         false},
        {"AF007",
         "bare assert(); use ASTRI_ASSERT / SIM_CHECK so Release "
         "builds can arm it",
         std::regex("\\bassert\\s*\\(|#\\s*include\\s*<cassert>"),
         true},
    };
    return rules;
}

/**
 * AF004: every stats registration names what it counts. Finds
 * register{Counter,Uint,Average,Histogram}( call sites and counts
 * top-level arguments across lines: fewer than three means the
 * trailing description is missing.
 */
void
checkStatDescriptions(const std::string &stripped,
                      const std::string &file,
                      const Suppressions &sup,
                      std::vector<Finding> &out)
{
    static const std::regex call_re(
        "register(Counter|Uint|Average|Histogram)\\s*\\(");
    auto begin = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      call_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::size_t open =
            static_cast<std::size_t>(it->position() + it->length()) - 1;
        int depth = 0;
        int args = 1;
        bool closed = false;
        for (std::size_t p = open; p < stripped.size(); ++p) {
            const char c = stripped[p];
            if (c == '(' || c == '[' || c == '{' || c == '<') {
                // '<' heuristically tracks template args; stray
                // comparisons never appear inside these call sites.
                ++depth;
            } else if (c == ')' || c == ']' || c == '}' || c == '>') {
                --depth;
                if (depth == 0 && c == ')') {
                    closed = true;
                    break;
                }
            } else if (c == ',' && depth == 1) {
                ++args;
            }
        }
        const int line = 1 + static_cast<int>(std::count(
                                 stripped.begin(),
                                 stripped.begin() +
                                     static_cast<long>(it->position()),
                                 '\n'));
        if (closed && args < 3 && !sup.allows(line, "AF004")) {
            out.push_back(
                {file, line, "AF004",
                 "stats registration is missing its description "
                 "argument"});
        }
    }
}

/** AF005: headers must open an include guard before any code. */
void
checkIncludeGuard(const std::string &stripped, const std::string &file,
                  const Suppressions &sup, std::vector<Finding> &out)
{
    static const std::regex guard_re("#\\s*ifndef\\s+[A-Za-z_]");
    static const std::regex pragma_re("#\\s*pragma\\s+once");
    if (std::regex_search(stripped, guard_re) ||
        std::regex_search(stripped, pragma_re))
        return;
    if (!sup.allows(1, "AF005"))
        out.push_back({file, 1, "AF005",
                       "header has no include guard"});
}


/**
 * Minimal token for the v2 semantic rules: identifiers, numeric
 * literals, and punctuation (with `::` kept as one token), each tagged
 * with its 1-based source line. Operates on the stripped text, so
 * comments and literals are already blank.
 */
struct Token {
    enum class Kind { Ident, Number, Punct };
    Kind kind;
    std::string text;
    int line;
};

std::vector<Token>
tokenize(const std::string &stripped)
{
    std::vector<Token> toks;
    int line = 1;
    const std::size_t n = stripped.size();
    std::size_t i = 0;
    auto isIdent = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while (i < n) {
        const char c = stripped[i];
        if (c == '\n') {
            ++line;
            ++i;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
        } else if (std::isalpha(static_cast<unsigned char>(c)) ||
                   c == '_') {
            std::size_t j = i;
            while (j < n && isIdent(stripped[j]))
                ++j;
            toks.push_back({Token::Kind::Ident,
                            stripped.substr(i, j - i), line});
            i = j;
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            // Numeric literal, including hex/binary digits, digit
            // separators, and integer suffixes.
            std::size_t j = i;
            while (j < n && (isIdent(stripped[j]) ||
                             stripped[j] == '\''))
                ++j;
            toks.push_back({Token::Kind::Number,
                            stripped.substr(i, j - i), line});
            i = j;
        } else if (c == ':' && i + 1 < n && stripped[i + 1] == ':') {
            toks.push_back({Token::Kind::Punct, "::", line});
            i += 2;
        } else {
            toks.push_back({Token::Kind::Punct, std::string(1, c),
                            line});
            ++i;
        }
    }
    return toks;
}

bool
tokIs(const std::vector<Token> &t, std::size_t i, const char *text)
{
    return i < t.size() && t[i].text == text;
}

/** Parse an integer literal token (hex/dec, separators, suffixes). */
bool
literalValue(const std::string &text, std::uint64_t &out)
{
    std::string digits;
    for (const char c : text) {
        if (c != '\'')
            digits.push_back(c);
    }
    while (!digits.empty()) {
        const char back = static_cast<char>(
            std::tolower(static_cast<unsigned char>(digits.back())));
        if (back == 'u' || back == 'l')
            digits.pop_back();
        else
            break;
    }
    if (digits.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(digits.c_str(), &end, 0);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

/** Identifier names that denote page/set/way/block identities. */
bool
isIdentityParamName(const std::string &name)
{
    static const std::set<std::string> kNames = {
        "page", "pn",  "lpn",      "ppn",       "set",
        "way",  "bn",  "page_num", "block_num", "set_idx",
        "way_idx"};
    return kNames.count(name) != 0;
}

/** Raw integer type tokens AF008/AF010 refuse as unit carriers. */
bool
matchRawIntType(const std::vector<Token> &toks, std::size_t i,
                std::size_t &after, bool &is_addr)
{
    std::size_t j = i;
    if (tokIs(toks, j, "std") && tokIs(toks, j + 1, "::"))
        j += 2;
    else if (tokIs(toks, j, "mem") && tokIs(toks, j + 1, "::"))
        j += 2;
    if (tokIs(toks, j, "uint64_t") || tokIs(toks, j, "uint32_t")) {
        after = j + 1;
        is_addr = false;
        return true;
    }
    if (tokIs(toks, j, "Addr")) {
        after = j + 1;
        is_addr = true;
        return true;
    }
    return false;
}

/**
 * AF008: a public header declaring a parameter like
 * `std::uint64_t page` hands out a unit-free identifier; the strong
 * types exist so these cross component boundaries typed.
 */
void
checkRawIdentityParams(const std::vector<Token> &toks,
                       const std::string &file, const Suppressions &sup,
                       std::vector<Finding> &out)
{
    int depth = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind == Token::Kind::Punct) {
            if (t.text == "(")
                ++depth;
            else if (t.text == ")")
                --depth;
            continue;
        }
        if (depth <= 0 || t.kind != Token::Kind::Ident)
            continue;
        std::size_t after = 0;
        bool is_addr = false;
        if (!matchRawIntType(toks, i, after, is_addr))
            continue;
        if (after >= toks.size() ||
            toks[after].kind != Token::Kind::Ident ||
            !isIdentityParamName(toks[after].text))
            continue;
        const std::size_t next = after + 1;
        if (!(tokIs(toks, next, ",") || tokIs(toks, next, ")") ||
              tokIs(toks, next, "=")))
            continue;
        const int line = toks[after].line;
        if (!sup.allows(line, "AF008")) {
            out.push_back(
                {file, line, "AF008",
                 "raw integer parameter '" + toks[after].text +
                     "' names a page/set/way identity; use the "
                     "strong types (sim/strong_types.hh)"});
        }
    }
}

bool
identContains(const std::string &ident, const char *needle)
{
    std::string lower;
    for (const char c : ident)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    return lower.find(needle) != std::string::npos;
}

/**
 * AF009: `Ticks t = ... someCycles ...` (or Cycles from ticks) mixes
 * units without a ClockDomain conversion. Call expressions
 * (`clk.cycles(...)`, `ticksToCycles(...)`) are the sanctioned
 * converters and are skipped because the offending identifier must not
 * be immediately called or qualified.
 */
void
checkTickCycleMixing(const std::vector<Token> &toks,
                     const std::string &file, const Suppressions &sup,
                     std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        std::size_t j = i;
        if (tokIs(toks, j, "sim") && tokIs(toks, j + 1, "::"))
            j += 2;
        const bool ticks_decl = tokIs(toks, j, "Ticks");
        const bool cycles_decl = tokIs(toks, j, "Cycles");
        if (!ticks_decl && !cycles_decl)
            continue;
        if (j + 2 >= toks.size() ||
            toks[j + 1].kind != Token::Kind::Ident ||
            !tokIs(toks, j + 2, "="))
            continue;
        const char *needle = ticks_decl ? "cycle" : "tick";
        for (std::size_t k = j + 3; k < toks.size(); ++k) {
            const Token &t = toks[k];
            if (t.kind == Token::Kind::Punct &&
                (t.text == ";" || t.text == "{"))
                break;
            if (t.kind != Token::Kind::Ident ||
                !identContains(t.text, needle))
                continue;
            // A call or qualified name is a conversion, not a leak.
            if (tokIs(toks, k + 1, "(") ||
                (k > 0 && (toks[k - 1].text == "." ||
                           toks[k - 1].text == "::")))
                continue;
            if (!sup.allows(t.line, "AF009")) {
                out.push_back(
                    {file, t.line, "AF009",
                     std::string("implicit ") +
                         (ticks_decl ? "Cycles->Ticks"
                                     : "Ticks->Cycles") +
                         " mix via '" + t.text +
                         "'; convert through ClockDomain"});
            }
            break;
        }
        i = j + 2;
    }
}

/**
 * AF010: `std::uint64_t n = pageNumber(...)` throws away the unit the
 * call just attached; keep the PageNum/BlockNum.
 */
void
checkNumberErasure(const std::vector<Token> &toks,
                   const std::string &file, const Suppressions &sup,
                   std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        std::size_t after = 0;
        bool is_addr = false;
        if (toks[i].kind != Token::Kind::Ident ||
            !matchRawIntType(toks, i, after, is_addr))
            continue;
        if (after + 1 >= toks.size() ||
            toks[after].kind != Token::Kind::Ident ||
            !tokIs(toks, after + 1, "="))
            continue;
        std::size_t k = after + 2;
        if (tokIs(toks, k, "mem") && tokIs(toks, k + 1, "::"))
            k += 2;
        if (!(tokIs(toks, k, "pageNumber") ||
              tokIs(toks, k, "blockNumber")) ||
            !tokIs(toks, k + 1, "("))
            continue;
        const int line = toks[after].line;
        if (!sup.allows(line, "AF010")) {
            out.push_back({file, line, "AF010",
                           toks[k].text + "() result stored into a "
                           "plain integer; keep the strong " +
                               (toks[k].text == "pageNumber"
                                    ? "PageNum"
                                    : "BlockNum")});
        }
    }
}

/**
 * Headers that own the sanctioned strong->raw conversions; .raw()
 * inside them is the escape hatch working as designed.
 */
bool
rawEscapeAllowlisted(const std::string &rel)
{
    static const std::set<std::string> kRawEscapeAllowlist = {
        "src/sim/strong_types.hh", "src/sim/ticks.hh",
        "src/mem/address.hh",      "src/mem/address_map.hh",
        "src/flash/flash_types.hh"};
    return kRawEscapeAllowlist.count(rel) != 0;
}

/** AF011: .raw() escapes outside the conversion-owning headers. */
void
checkRawEscapes(const std::vector<Token> &toks, const std::string &file,
                const Suppressions &sup, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!(tokIs(toks, i, ".") && tokIs(toks, i + 1, "raw") &&
              tokIs(toks, i + 2, "(") && tokIs(toks, i + 3, ")")))
            continue;
        const int line = toks[i + 1].line;
        if (!sup.allows(line, "AF011")) {
            out.push_back(
                {file, line, "AF011",
                 "strong-type .raw() escape outside the conversion "
                 "headers; convert via pageAddr()/blockAddr()/"
                 "ClockDomain or annotate the reviewed escape"});
        }
    }
}

/**
 * AF012: a literal argument to log2i()/alignDown()/alignUp() that is
 * not a power of two fails SIM_CHECK_CE; catch it before it compiles.
 */
void
checkPowerOfTwoLiterals(const std::vector<Token> &toks,
                        const std::string &file,
                        const Suppressions &sup,
                        std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const bool is_log2 = tokIs(toks, i, "log2i");
        const bool is_align =
            tokIs(toks, i, "alignDown") || tokIs(toks, i, "alignUp");
        if ((!is_log2 && !is_align) || !tokIs(toks, i + 1, "("))
            continue;
        // Split top-level arguments.
        std::vector<std::vector<const Token *>> args(1);
        int depth = 1;
        std::size_t k = i + 2;
        for (; k < toks.size() && depth > 0; ++k) {
            const Token &t = toks[k];
            if (t.kind == Token::Kind::Punct) {
                if (t.text == "(")
                    ++depth;
                else if (t.text == ")") {
                    if (--depth == 0)
                        break;
                } else if (t.text == "," && depth == 1) {
                    args.emplace_back();
                    continue;
                }
            }
            args.back().push_back(&t);
        }
        const std::size_t arg_idx = is_log2 ? 0 : 1;
        if (arg_idx >= args.size() || args[arg_idx].size() != 1)
            continue;
        const Token &arg = *args[arg_idx][0];
        std::uint64_t v = 0;
        if (arg.kind != Token::Kind::Number ||
            !literalValue(arg.text, v))
            continue;
        if (v != 0 && (v & (v - 1)) == 0)
            continue;
        if (!sup.allows(arg.line, "AF012")) {
            out.push_back({file, arg.line, "AF012",
                           toks[i].text +
                               "() literal argument is not a power "
                               "of two and will fail SIM_CHECK_CE"});
        }
    }
}

/**
 * AF013: the FC/BC decomposition of the DRAM cache communicates ONLY
 * through bounded channels; a controller source file that names the
 * opposite controller, a structure the opposite side owns, or the
 * layers above/below (flash device, DramCache facade, System/SimCore)
 * has re-grown a direct call path around the channel layer. Matching
 * is by exact identifier token, so e.g. BcReply::Kind::EvictBufferHit
 * in the frontside does not trip the EvictBuffer ban. The DramCache
 * facade (dram_cache.*) is the allowlisted place where both
 * controllers and the device are visible at once.
 */
void
checkChannelBypass(const std::vector<Token> &toks,
                   const std::string &rel, const Suppressions &sup,
                   std::vector<Finding> &out)
{
    // Match the path segment rather than anchoring at the root so the
    // rule fires whether the controllers are linted as src/core/... or
    // through a fixture tree rooted higher up.
    const auto inCore = [&rel](const char *stem) {
        const auto pos = rel.find(stem);
        return pos != std::string::npos &&
               (pos == 0 || rel[pos - 1] == '/');
    };
    const bool fc = inCore("src/core/frontside_controller.");
    const bool bc = inCore("src/core/backside_controller.");
    if (!fc && !bc)
        return;
    // The MSR and evict buffer belong to the backside; the frontside
    // must not reach into them (or past them to the device).
    static const std::set<std::string> kFcForbidden = {
        "BacksideController", "MissStatusRow", "EvictBuffer",
        "FlashDevice",        "DramCache",     "System",
        "SimCore"};
    static const std::set<std::string> kBcForbidden = {
        "FrontsideController", "FlashDevice", "DramCache", "System",
        "SimCore"};
    const std::set<std::string> &forbidden =
        fc ? kFcForbidden : kBcForbidden;
    const char *side = fc ? "frontside" : "backside";
    for (const Token &t : toks) {
        if (t.kind != Token::Kind::Ident ||
            forbidden.count(t.text) == 0)
            continue;
        if (sup.allows(t.line, "AF013"))
            continue;
        out.push_back(
            {rel, t.line, "AF013",
             "direct reference to '" + t.text + "' from the " + side +
                 " controller bypasses the channel layer; FC and BC "
                 "talk only through sim::BoundedChannel messages "
                 "(composition lives in the DramCache facade)"});
    }
}

/**
 * AF014: src/core sees flash storage only through the abstract
 * flash::Backend interface. Naming a concrete device model
 * (FlashDevice, ZnsDevice, or the Ftl it wraps) from core re-couples
 * the cache/system layer to one back-end and defeats the pluggable
 * fabric: the model is chosen by flash::BackendKind and instantiated
 * inside FlashFabric (src/flash/fabric.cc). Matching is by exact
 * identifier token, so FlashFabricConfig or FlashCommand never trip
 * the rule.
 */
void
checkConcreteFlashTypes(const std::vector<Token> &toks,
                        const std::string &rel,
                        const Suppressions &sup,
                        std::vector<Finding> &out)
{
    // Path-segment match, like AF013, so fixture trees rooted above
    // src/core engage the rule too.
    const auto pos = rel.find("src/core/");
    if (pos == std::string::npos ||
        (pos != 0 && rel[pos - 1] != '/'))
        return;
    static const std::set<std::string> kConcrete = {
        "FlashDevice", "ZnsDevice", "Ftl"};
    for (const Token &t : toks) {
        if (t.kind != Token::Kind::Ident ||
            kConcrete.count(t.text) == 0)
            continue;
        if (sup.allows(t.line, "AF014"))
            continue;
        out.push_back(
            {rel, t.line, "AF014",
             "concrete flash device type '" + t.text +
                 "' named from src/core; core talks to storage only "
                 "through flash::Backend (select the model with "
                 "flash::BackendKind; the fabric instantiates it)"});
    }
}

/**
 * AF015 is resolved across the whole scan: container names are
 * declared in headers and iterated in implementation files, so the
 * declared-as-unordered name set is accumulated globally while files
 * are scanned and the recorded range-for sites are judged afterwards
 * (resolveUnorderedIteration). Over-approximate by name on purpose: a
 * name declared unordered anywhere flags its iteration everywhere,
 * and reviewed order-insensitive walks carry an annotation.
 */
struct UnorderedIterationState {
    std::set<std::string> declaredUnordered;
    struct Site {
        std::string file;
        int line;
        std::string name;
        bool suppressed;
    };
    std::vector<Site> sites;
};

UnorderedIterationState g_af015;

/** Skip to the token after a balanced <...> opening at @p open. */
std::size_t
skipAngles(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t k = open; k < toks.size(); ++k) {
        if (toks[k].text == "<") {
            ++depth;
        } else if (toks[k].text == ">") {
            if (--depth == 0)
                return k + 1;
        }
    }
    return toks.size();
}

/** AF015 collection: declared std::unordered_* names + range-fors. */
void
collectUnorderedIteration(const std::vector<Token> &toks,
                          const std::string &file,
                          const Suppressions &sup)
{
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!(tokIs(toks, i, "std") && tokIs(toks, i + 1, "::")))
            continue;
        if (toks[i + 2].text.rfind("unordered_", 0) != 0 ||
            !tokIs(toks, i + 3, "<"))
            continue;
        const std::size_t after = skipAngles(toks, i + 3);
        // `std::unordered_map<K,V> name` declares; `...>::iterator`
        // or a bare type mention does not.
        if (after < toks.size() &&
            toks[after].kind == Token::Kind::Ident)
            g_af015.declaredUnordered.insert(toks[after].text);
    }

    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!tokIs(toks, i, "for") || !tokIs(toks, i + 1, "("))
            continue;
        int depth = 1;
        std::size_t colon = 0, close = 0;
        for (std::size_t k = i + 2; k < toks.size(); ++k) {
            const std::string &x = toks[k].text;
            if (x == "(") {
                ++depth;
            } else if (x == ")") {
                if (--depth == 0) {
                    close = k;
                    break;
                }
            } else if (x == ":" && depth == 1 && colon == 0) {
                colon = k;
            }
        }
        if (colon == 0 || close == 0)
            continue;
        // The last identifier of the range expression names the
        // container (`bc.pending` -> pending). A trailing call is a
        // factory, not a container name.
        std::string name;
        int line = 0;
        for (std::size_t k = colon + 1; k < close; ++k) {
            if (toks[k].kind == Token::Kind::Ident &&
                !tokIs(toks, k + 1, "(")) {
                name = toks[k].text;
                line = toks[k].line;
            }
        }
        if (!name.empty()) {
            g_af015.sites.push_back({file, line, name,
                                     sup.allows(line, "AF015")});
        }
    }
}

/** AF015 resolution, after every file contributed declarations. */
void
resolveUnorderedIteration(std::vector<Finding> &out)
{
    for (const UnorderedIterationState::Site &s : g_af015.sites) {
        if (s.suppressed ||
            g_af015.declaredUnordered.count(s.name) == 0)
            continue;
        out.push_back(
            {s.file, s.line, "AF015",
             "range-for over unordered container '" + s.name +
                 "': hash iteration order is nondeterministic; "
                 "iterate a sorted copy or keep a side order",
             s.name});
    }
}

/**
 * AF016: an associative container keyed on a raw pointer orders (or
 * hashes) by address, which varies run to run with the allocator.
 */
void
checkPointerKeyedContainers(const std::vector<Token> &toks,
                            const std::string &file,
                            const Suppressions &sup,
                            std::vector<Finding> &out)
{
    static const std::set<std::string> kAssoc = {
        "map",           "set",
        "multimap",      "multiset",
        "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset"};
    for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident ||
            kAssoc.count(toks[i].text) == 0 ||
            !tokIs(toks, i + 1, "<"))
            continue;
        if (!(tokIs(toks, i - 2, "std") && tokIs(toks, i - 1, "::")))
            continue;
        // Scan the first template argument (the key type) only.
        int depth = 0;
        bool pointer_key = false;
        for (std::size_t k = i + 1; k < toks.size(); ++k) {
            const std::string &x = toks[k].text;
            if (x == "<") {
                ++depth;
            } else if (x == ">") {
                if (--depth == 0)
                    break;
            } else if (x == "," && depth == 1) {
                break;
            } else if (x == "*" && depth == 1) {
                pointer_key = true;
            }
        }
        const int line = toks[i].line;
        if (pointer_key && !sup.allows(line, "AF016")) {
            out.push_back(
                {file, line, "AF016",
                 "std::" + toks[i].text +
                     " keyed on a raw pointer orders by address, "
                     "which varies run to run; key on a stable "
                     "identity (id / page number) instead"});
        }
    }
}

/**
 * AF017: mutable static-storage state. Two passes over the
 * preprocessor-free token stream: (a) `static` / `thread_local`
 * declarations that are neither const-qualified nor functions, and
 * (b) keyword-less namespace-scope definitions with an initializer
 * (caught by a brace-scope classifier, so `int g_checks = 1;` at
 * namespace scope is found even without a storage keyword).
 */
void
checkMutableStaticState(const std::vector<Token> &all_toks,
                        const std::vector<std::string> &lines,
                        const std::string &file, const Suppressions &sup,
                        std::vector<Finding> &out)
{
    // Reviewed global-state owners: the checks arming flag, the
    // tracer's install point, and the uthread current pointer.
    static const std::set<std::string> kStateOwners = {
        "src/sim/invariant.cc", "src/sim/trace_events.cc",
        "src/uthread/uthread.cc"};
    if (kStateOwners.count(file) != 0)
        return;

    // Drop tokens on preprocessor-directive lines: macro definitions
    // are not runtime state.
    std::vector<char> pp(lines.size() + 1, 0);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        for (const char c : lines[i]) {
            if (std::isspace(static_cast<unsigned char>(c)))
                continue;
            pp[i + 1] = c == '#';
            break;
        }
    }
    std::vector<Token> toks;
    toks.reserve(all_toks.size());
    for (const Token &t : all_toks) {
        if (static_cast<std::size_t>(t.line) >= pp.size() ||
            !pp[static_cast<std::size_t>(t.line)])
            toks.push_back(t);
    }

    static const std::set<std::string> kConstQual = {
        "const", "constexpr", "constinit"};

    // Pass (a): static / thread_local declarations.
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!(tokIs(toks, i, "static") ||
              tokIs(toks, i, "thread_local")))
            continue;
        bool const_qual = false, function = false;
        std::string name;
        int depth = 0;
        for (std::size_t k = i + 1; k < toks.size(); ++k) {
            const Token &x = toks[k];
            if (x.kind == Token::Kind::Punct) {
                if (x.text == "(") {
                    if (depth == 0 && k > 0 &&
                        toks[k - 1].kind == Token::Kind::Ident)
                        function = true;
                    ++depth;
                } else if (x.text == ")") {
                    --depth;
                } else if (depth == 0 &&
                           (x.text == ";" || x.text == "=" ||
                            x.text == "{")) {
                    break;
                }
            } else if (depth == 0 &&
                       kConstQual.count(x.text) != 0) {
                const_qual = true;
            } else if (depth == 0 &&
                       x.kind == Token::Kind::Ident) {
                // Last identifier before the terminator names the
                // declared variable (the baseline token).
                name = x.text;
            }
        }
        const int line = toks[i].line;
        if (!const_qual && !function && !sup.allows(line, "AF017")) {
            out.push_back(
                {file, line, "AF017",
                 std::string(toks[i].text) +
                     " mutable state: hidden static storage leaks "
                     "simulation state across Systems and breaks "
                     "SweepRunner replica isolation",
                 name});
        }
    }

    // Pass (b): namespace-scope definitions without a storage keyword.
    static const std::set<std::string> kStmtSkip = {
        "static",  "thread_local", "using",    "typedef",
        "template", "extern",      "operator", "friend",
        "namespace", "class",      "struct",   "union",
        "enum"};
    int paren = 0;
    int non_ns_scopes = 0;
    std::vector<char> scope_is_ns;
    std::size_t stmt = 0; ///< First token of the current statement.
    auto stmtFlags = [&](std::size_t from, std::size_t to,
                         bool &skip, bool &call, int &line) {
        skip = false;
        call = false;
        line = 0;
        int d = 0;
        for (std::size_t k = from; k < to; ++k) {
            const Token &x = toks[k];
            if (x.kind == Token::Kind::Ident) {
                if (kStmtSkip.count(x.text) != 0 ||
                    kConstQual.count(x.text) != 0)
                    skip = true;
                line = x.line;
            } else if (x.text == "(") {
                if (d == 0)
                    call = true;
                ++d;
            } else if (x.text == ")") {
                --d;
            }
        }
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != Token::Kind::Punct) {
            continue;
        } else if (t.text == "(") {
            ++paren;
        } else if (t.text == ")") {
            --paren;
        } else if (t.text == "{" && paren == 0) {
            bool skip = false, call = false;
            int line = 0;
            stmtFlags(stmt, i, skip, call, line);
            // `T name{init};` at namespace scope: flag before the
            // brace opens an (ignored) inner scope.
            if (non_ns_scopes == 0 && !skip && !call && line != 0 &&
                i > stmt && toks[i - 1].kind == Token::Kind::Ident &&
                i - stmt >= 2 && !sup.allows(line, "AF017")) {
                out.push_back(
                    {file, line, "AF017",
                     "mutable namespace-scope state '" +
                         toks[i - 1].text +
                         "': hidden globals leak simulation state "
                         "across Systems",
                     toks[i - 1].text});
            }
            bool ns = false;
            for (std::size_t k = stmt; k < i; ++k) {
                if (tokIs(toks, k, "namespace"))
                    ns = true;
            }
            scope_is_ns.push_back(ns);
            if (!ns)
                ++non_ns_scopes;
            stmt = i + 1;
        } else if (t.text == "}" && paren == 0) {
            if (!scope_is_ns.empty()) {
                if (!scope_is_ns.back())
                    --non_ns_scopes;
                scope_is_ns.pop_back();
            }
            stmt = i + 1;
        } else if (t.text == ";" && paren == 0) {
            if (non_ns_scopes == 0) {
                // Namespace scope: a statement with a top-level `=`
                // and no call parens before it defines a mutable
                // variable.
                std::size_t eq = 0;
                int d = 0;
                for (std::size_t k = stmt; k < i && eq == 0; ++k) {
                    if (toks[k].text == "(")
                        ++d;
                    else if (toks[k].text == ")")
                        --d;
                    else if (toks[k].text == "=" && d == 0)
                        eq = k;
                }
                if (eq != 0) {
                    bool skip = false, call = false;
                    int line = 0;
                    stmtFlags(stmt, eq, skip, call, line);
                    if (!skip && !call && line != 0 &&
                        toks[eq - 1].kind == Token::Kind::Ident &&
                        !sup.allows(line, "AF017")) {
                        out.push_back(
                            {file, line, "AF017",
                             "mutable namespace-scope state '" +
                                 toks[eq - 1].text +
                                 "': hidden globals leak simulation "
                                 "state across Systems",
                             toks[eq - 1].text});
                    }
                }
            }
            stmt = i + 1;
        }
    }
}

/**
 * AF018: every sim::BoundedChannel construction must declare its
 * ChannelContract (the lookahead manifest): a two-argument
 * construction takes the default contract of zero minimum latency,
 * which certifies nothing and would stall a conservative parallel
 * engine. Matches direct `BoundedChannel<T>(...)` constructions and
 * `make_unique<...BoundedChannel<T>>(...)`.
 */
void
checkChannelContractDeclared(const std::vector<Token> &toks,
                             const std::string &file,
                             const Suppressions &sup,
                             std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!tokIs(toks, i, "BoundedChannel") ||
            !tokIs(toks, i + 1, "<"))
            continue;
        std::size_t k = skipAngles(toks, i + 1);
        // Close any enclosing template (make_unique<...>) before the
        // call parens; a declaration or parameter never follows its
        // '>' with '('.
        while (tokIs(toks, k, ">"))
            ++k;
        if (!tokIs(toks, k, "("))
            continue;
        int depth = 0, commas = 0;
        bool any = false, closed = false;
        for (std::size_t p = k; p < toks.size(); ++p) {
            const std::string &x = toks[p].text;
            if (x == "(") {
                ++depth;
            } else if (x == ")") {
                if (--depth == 0) {
                    closed = true;
                    break;
                }
            } else if (x == "," && depth == 1) {
                ++commas;
            } else {
                any = true;
            }
        }
        const int nargs = any ? commas + 1 : 0;
        const int line = toks[i].line;
        if (closed && nargs >= 1 && nargs < 3 &&
            !sup.allows(line, "AF018")) {
            out.push_back(
                {file, line, "AF018",
                 "BoundedChannel constructed without a declared "
                 "ChannelContract; state the channel's minimum "
                 "push-to-consume latency (lookahead manifest, "
                 "DESIGN.md §14)"});
        }
    }
}

/**
 * AF019: `<expr>.eventQueue().schedule(...)` (or -> forms) from src/
 * outside src/sim/. The accessor names SOMEBODY's queue — under the
 * domain partition possibly one executing on another host thread —
 * so scheduling through it bypasses both the channel seam and the
 * engine's deterministic post mailbox. The kernel layer itself
 * (src/sim/, which implements queues, engines, and SimObject) is
 * exempt.
 */
void
checkCrossDomainScheduling(const std::vector<Token> &toks,
                           const std::string &file,
                           const Suppressions &sup,
                           std::vector<Finding> &out)
{
    for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
        if (!tokIs(toks, i, "eventQueue") || !tokIs(toks, i + 1, "(") ||
            !tokIs(toks, i + 2, ")"))
            continue;
        // `.` is one token; `->` tokenizes as `-` `>`.
        std::size_t callee = 0;
        if (tokIs(toks, i + 3, "."))
            callee = i + 4;
        else if (tokIs(toks, i + 3, "-") && tokIs(toks, i + 4, ">"))
            callee = i + 5;
        if (callee == 0)
            continue;
        if (!tokIs(toks, callee, "schedule") &&
            !tokIs(toks, callee, "scheduleIn"))
            continue;
        if (!tokIs(toks, callee + 1, "("))
            continue;
        const int line = toks[i].line;
        if (sup.allows(line, "AF019"))
            continue;
        out.push_back(
            {file, line, "AF019",
             "scheduling through an eventQueue() accessor injects "
             "work into another domain's queue; schedule on the "
             "component's own queue reference, and cross domains "
             "only via a contracted channel (DESIGN.md §15)"});
    }
}

/*
 * ---------------------------------------------------------------------
 * Domain-ownership analysis (AF020..AF023, DESIGN.md §16).
 *
 * Resolved across the whole scan, like AF015: class bodies in src/
 * headers contribute members and method declarations, every src/ file
 * contributes call sites and addLink lambdas, and the rules are judged
 * after the file loop (resolveOwnership). The component→domain table
 * mirrors the runtime partition System builds: the frontside queue
 * owns the cores, the FC and the facade's value-owned shared
 * structures; each backside shard's queue owns one BC with its MSR,
 * evict buffer and flash-fabric slice (flash submit() runs in the
 * owning BC's event chain, never the frontside's).
 * ---------------------------------------------------------------------
 */

/** Execution domain of a known component class (nullptr otherwise). */
const char *
componentDomain(const std::string &cls)
{
    static const std::map<std::string, const char *> kTable = {
        {"FrontsideController", "fc"}, {"SimCore", "fc"},
        {"DramCache", "fc"},           {"FlashFabric", "bc"},
        {"BacksideController", "bc"},  {"MissStatusRow", "bc"},
        {"EvictBuffer", "bc"}};
    const auto it = kTable.find(cls);
    return it == kTable.end() ? nullptr : it->second;
}

/** True when @p rel's basename starts with @p stem. */
bool
baseStartsWith(const std::string &rel, const char *stem)
{
    const std::size_t slash = rel.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? rel : rel.substr(slash + 1);
    return base.rfind(stem, 0) == 0;
}

/** Execution domain of a src/ file (nullptr when not attributable). */
const char *
fileDomain(const std::string &rel)
{
    if (baseStartsWith(rel, "frontside_controller.") ||
        baseStartsWith(rel, "sim_core.") ||
        baseStartsWith(rel, "system.") ||
        baseStartsWith(rel, "dram_cache."))
        return "fc";
    if (baseStartsWith(rel, "backside_controller.") ||
        baseStartsWith(rel, "miss_status_row.") ||
        baseStartsWith(rel, "evict_buffer.") ||
        rel.find("src/flash/") != std::string::npos)
        return "bc";
    return nullptr;
}

struct OwnershipState {
    /** A data member of a component class (from a src/ header). */
    struct Member {
        std::string cls, file, name, type;
        int line = 0;
        bool isRef = false;   ///< Top-level & or * declarator.
        bool isConst = false; ///< Any top-level const qualifier.
        bool isChannel = false; ///< Mentions sim::BoundedChannel.
        bool sup20 = false, sup22 = false;
    };
    std::vector<Member> members;

    /** Method name → every class declaring it; a method is
     *  attributable only when exactly one class declares it. */
    std::map<std::string, std::set<std::string>> methodOwners;

    /** A `.` / `->` call site anywhere under src/. */
    struct Call {
        std::string file, method;
        int line = 0;
        bool suppressed = false;
    };
    std::vector<Call> calls;

    /** An addLink(...) lambda argument (the watermark provider). */
    struct Watermark {
        std::string file;
        int line = 0;
        bool refCapture = false;    ///< Capture list contains '&'.
        bool usesWatermark = false; ///< Body calls stampWatermark().
        bool suppressed = false;
    };
    std::vector<Watermark> watermarks;

    // Report-side edges, filled during resolution (deliberately
    // including baselined findings: the report is the worklist).
    struct SyncEdge {
        std::string method, callee, file;
        int line = 0;
    };
    std::vector<SyncEdge> syncEdges; ///< Facade-allowlisted calls.
    struct SharedEdge {
        std::string type, holder, member, domain, owner, file;
        int line = 0;
    };
    std::vector<SharedEdge> sharedEdges; ///< Cross-domain mutable refs.
};

OwnershipState g_own;

/** Skip from a '{' at @p open to just past its matching '}'. */
std::size_t
skipBraces(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t k = open; k < toks.size(); ++k) {
        if (toks[k].text == "{") {
            ++depth;
        } else if (toks[k].text == "}") {
            if (--depth == 0)
                return k + 1;
        }
    }
    return toks.size();
}

/** Record the method declared by the statement ending at '(' @p paren. */
void
recordOwnershipMethod(const std::vector<Token> &toks, std::size_t stmt,
                      std::size_t paren, const std::string &cls)
{
    static const std::set<std::string> kNotMethods = {
        "if",     "for",    "while",  "switch", "return", "sizeof",
        "new",    "delete", "throw",  "catch",  "void",   "bool",
        "int",    "auto",   "static_assert",    "decltype",
        "alignof", "noexcept"};
    if (paren <= stmt || toks[paren - 1].kind != Token::Kind::Ident)
        return;
    const std::string &name = toks[paren - 1].text;
    if (name == cls || kNotMethods.count(name) != 0)
        return; // constructor / control keyword / builtin type
    if (paren >= 2 && toks[paren - 2].text == "~")
        return; // destructor
    g_own.methodOwners[name].insert(cls);
}

/** Record the member declared by the statement [stmt, end). */
void
recordOwnershipMember(const std::vector<Token> &toks, std::size_t stmt,
                      std::size_t end, const std::string &cls,
                      const std::string &rel, const Suppressions &sup)
{
    if (end <= stmt || componentDomain(cls) == nullptr)
        return;
    static const std::set<std::string> kNotMembers = {
        "using",   "typedef", "friend",    "template", "static",
        "enum",    "class",   "struct",    "union",    "public",
        "private", "protected", "operator", "virtual",  "return",
        "case",    "default", "goto",      "break",    "continue"};
    OwnershipState::Member m;
    m.cls = cls;
    m.file = rel;
    std::size_t name_end = end;
    int angle = 0;
    for (std::size_t k = stmt; k < end; ++k) {
        const Token &t = toks[k];
        if (t.kind == Token::Kind::Ident &&
            kNotMembers.count(t.text) != 0)
            return;
        if (t.text == "<") {
            ++angle;
        } else if (t.text == ">") {
            --angle;
        } else if (t.text == "=" && angle == 0) {
            name_end = k;
            break;
        } else if (t.text == "BoundedChannel") {
            m.isChannel = true;
        } else if (t.text == "const" && angle == 0) {
            m.isConst = true;
        } else if ((t.text == "&" || t.text == "*") && angle == 0) {
            m.isRef = true;
        }
    }
    // Last identifier names the member; the identifier before it (in
    // declaration order, possibly inside template angles) is the best
    // single-token guess at the held type.
    std::size_t name_at = 0;
    for (std::size_t k = stmt; k < name_end; ++k) {
        if (toks[k].kind == Token::Kind::Ident) {
            if (name_at != 0)
                m.type = toks[name_at].text;
            name_at = k;
        }
    }
    if (name_at == 0 || m.type.empty())
        return;
    m.name = toks[name_at].text;
    m.line = toks[name_at].line;
    m.sup20 = sup.allows(m.line, "AF020");
    m.sup22 = sup.allows(m.line, "AF022");
    g_own.members.push_back(std::move(m));
}

/** Walk one class body: member declarations + declared methods. */
void
parseOwnershipClassBody(const std::vector<Token> &toks,
                        std::size_t open, const std::string &cls,
                        const std::string &rel, const Suppressions &sup)
{
    int depth = 0;
    std::size_t close = toks.size();
    for (std::size_t k = open; k < toks.size(); ++k) {
        if (toks[k].text == "{") {
            ++depth;
        } else if (toks[k].text == "}") {
            if (--depth == 0) {
                close = k;
                break;
            }
        }
    }
    std::size_t stmt = open + 1;
    std::size_t k = open + 1;
    while (k < close) {
        const std::string &x = toks[k].text;
        if (x == "(") {
            recordOwnershipMethod(toks, stmt, k, cls);
            // Skip the parameter list, then the declaration tail:
            // a body / ctor-init braces are opaque, a ';' ends it.
            int d = 0;
            for (; k < close; ++k) {
                if (toks[k].text == "(") {
                    ++d;
                } else if (toks[k].text == ")" && --d == 0) {
                    ++k;
                    break;
                }
            }
            int pd = 0;
            while (k < close) {
                const std::string &y = toks[k].text;
                if (y == "(") {
                    ++pd;
                } else if (y == ")") {
                    --pd;
                } else if (y == "{" && pd == 0) {
                    k = skipBraces(toks, k);
                    break;
                } else if (y == ";" && pd == 0) {
                    ++k;
                    break;
                }
                ++k;
            }
            stmt = k;
        } else if (x == "{") {
            // Brace-initialised member or nested type body.
            recordOwnershipMember(toks, stmt, k, cls, rel, sup);
            k = skipBraces(toks, k);
            if (k < close && toks[k].text == ";")
                ++k;
            stmt = k;
        } else if (x == ";") {
            recordOwnershipMember(toks, stmt, k, cls, rel, sup);
            stmt = ++k;
        } else if (x == ":" && k == stmt + 1 &&
                   (tokIs(toks, stmt, "public") ||
                    tokIs(toks, stmt, "private") ||
                    tokIs(toks, stmt, "protected"))) {
            stmt = ++k;
        } else {
            ++k;
        }
    }
}

/** Phase-1 collection over src/ headers: class bodies. */
void
collectOwnershipClasses(const std::vector<Token> &toks,
                        const std::string &rel, const Suppressions &sup)
{
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!tokIs(toks, i, "class") && !tokIs(toks, i, "struct"))
            continue;
        if (toks[i + 1].kind != Token::Kind::Ident)
            continue;
        // The body '{' must come before any ';' / '(' — otherwise a
        // forward declaration or an elaborated-type mention.
        std::size_t open = 0;
        for (std::size_t k = i + 2; k < toks.size(); ++k) {
            const std::string &x = toks[k].text;
            if (x == "{") {
                open = k;
                break;
            }
            if (x == ";" || x == "(" || x == ")" || x == "}")
                break;
        }
        if (open != 0) {
            parseOwnershipClassBody(toks, open, toks[i + 1].text, rel,
                                    sup);
        }
    }
}

/** Phase-1 collection over every src/ file: calls + addLink lambdas. */
void
collectOwnershipUses(const std::vector<Token> &toks,
                     const std::string &rel, const Suppressions &sup)
{
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        // `.` is one token; `->` tokenizes as `-` `>`.
        std::size_t callee = 0;
        if (tokIs(toks, i, "."))
            callee = i + 1;
        else if (tokIs(toks, i, "-") && tokIs(toks, i + 1, ">"))
            callee = i + 2;
        if (callee != 0 && callee + 1 < toks.size() &&
            toks[callee].kind == Token::Kind::Ident &&
            tokIs(toks, callee + 1, "(")) {
            g_own.calls.push_back(
                {rel, toks[callee].text, toks[callee].line,
                 sup.allows(toks[callee].line, "AF021")});
        }
        if (!tokIs(toks, i, "addLink") || !tokIs(toks, i + 1, "("))
            continue;
        int d = 0;
        for (std::size_t k = i + 1; k < toks.size(); ++k) {
            const std::string &x = toks[k].text;
            if (x == "(") {
                ++d;
            } else if (x == ")") {
                if (--d == 0)
                    break;
            } else if (x == "[" && d == 1) {
                // A lambda argument: the watermark provider.
                OwnershipState::Watermark w;
                w.file = rel;
                w.line = toks[k].line;
                w.suppressed = sup.allows(w.line, "AF023");
                std::size_t p = k + 1;
                for (; p < toks.size() && toks[p].text != "]"; ++p) {
                    if (toks[p].text == "&")
                        w.refCapture = true;
                }
                while (p < toks.size() && toks[p].text != "{")
                    ++p;
                int bd = 0;
                for (; p < toks.size(); ++p) {
                    if (toks[p].text == "{") {
                        ++bd;
                    } else if (toks[p].text == "}") {
                        if (--bd == 0)
                            break;
                    } else if (tokIs(toks, p, "stampWatermark")) {
                        w.usesWatermark = true;
                    }
                }
                g_own.watermarks.push_back(w);
                k = p; // parens inside the body were consumed with it
            }
        }
    }
}

/** AF020..AF023 resolution, after every file contributed. */
void
resolveOwnership(std::vector<Finding> &out)
{
    // AF020: a component holding a raw pointer/reference into a
    // component of the OTHER domain. Channels and the facade are the
    // sanctioned seams.
    for (const OwnershipState::Member &m : g_own.members) {
        const char *holder_dom = componentDomain(m.cls);
        const char *type_dom = componentDomain(m.type);
        if (holder_dom == nullptr || type_dom == nullptr)
            continue;
        if (!m.isRef || m.isConst || m.isChannel)
            continue;
        if (std::string(holder_dom) == type_dom)
            continue;
        if (baseStartsWith(m.file, "dram_cache."))
            continue; // the allowlisted composition point
        if (m.sup20)
            continue;
        out.push_back(
            {m.file, m.line, "AF020",
             "'" + m.cls + "::" + m.name + "' holds a raw " +
                 std::string(holder_dom) + "-side reference to " +
                 m.type + " (" + type_dom + "-owned); cross the "
                 "domain boundary through a BoundedChannel or the "
                 "DramCache facade (DESIGN.md §16)",
             m.name});
    }

    // AF021: direct calls of methods attributable to exactly one
    // controller, outside its own files and outside the facade.
    std::map<std::string, std::string> attributable;
    for (const auto &mo : g_own.methodOwners) {
        if (mo.second.size() != 1)
            continue;
        const std::string &cls = *mo.second.begin();
        if (cls == "FrontsideController" ||
            cls == "BacksideController")
            attributable[mo.first] = cls;
    }
    for (const OwnershipState::Call &c : g_own.calls) {
        const auto it = attributable.find(c.method);
        if (it == attributable.end())
            continue;
        const std::string &cls = it->second;
        const char *home = cls == "FrontsideController"
                               ? "frontside_controller."
                               : "backside_controller.";
        if (baseStartsWith(c.file, home))
            continue; // the controller's own files
        if (baseStartsWith(c.file, "dram_cache.")) {
            // The allowlisted pump: recorded as a measured sync edge
            // for the ownership report, never flagged.
            g_own.syncEdges.push_back({c.method, cls, c.file, c.line});
            continue;
        }
        const char *caller_dom = fileDomain(c.file);
        if (caller_dom != nullptr &&
            std::string(caller_dom) == componentDomain(cls))
            continue; // same-domain call, no boundary crossed
        if (c.suppressed)
            continue;
        out.push_back(
            {c.file, c.line, "AF021",
             "direct call of " + cls + "::" + c.method + " crosses "
             "the FC<->BC domain boundary synchronously; route it "
             "through the channel seam or the DramCache facade's "
             "allowlisted pump (DESIGN.md §16)",
             c.method});
    }

    // AF022: a non-component type held mutably from two domains.
    // The owning domain is the one holding it by value (the facade's
    // shared structures); mutable references from the other domain
    // are the measured exec-group-split worklist.
    std::map<std::string,
             std::vector<const OwnershipState::Member *>> shared;
    for (const OwnershipState::Member &m : g_own.members) {
        if (componentDomain(m.type) != nullptr || m.isChannel)
            continue;
        if (m.type.empty() ||
            !std::isupper(static_cast<unsigned char>(m.type[0])))
            continue; // class-ish types only
        shared[m.type].push_back(&m);
    }
    for (const auto &entry : shared) {
        std::set<std::string> domains;
        std::string owner;
        for (const OwnershipState::Member *m : entry.second) {
            domains.insert(componentDomain(m->cls));
            if (!m->isRef && owner.empty())
                owner = componentDomain(m->cls);
        }
        if (domains.size() < 2)
            continue;
        for (const OwnershipState::Member *m : entry.second) {
            if (!m->isRef || m->isConst)
                continue;
            const std::string dom = componentDomain(m->cls);
            if (!owner.empty() && dom == owner)
                continue;
            g_own.sharedEdges.push_back({entry.first, m->cls, m->name,
                                         dom, owner, m->file,
                                         m->line});
            if (m->sup22)
                continue;
            out.push_back(
                {m->file, m->line, "AF022",
                 "'" + m->cls + "::" + m->name + "' mutably shares " +
                     entry.first + " across domains (" +
                     (owner.empty() ? std::string("no value owner")
                                    : owner + "-owned by value") +
                     ", referenced from " + dom + ") without an "
                     "owning declaration — a synchronous coupling "
                     "the exec-group split must break (DESIGN.md "
                     "§16)",
                 m->name});
        }
    }

    // AF023: addLink watermark lambdas capturing by reference. The
    // sanctioned provider copies its bindings and reads the channel's
    // acquire-stamped watermark.
    for (const OwnershipState::Watermark &w : g_own.watermarks) {
        if (!w.refCapture || w.suppressed)
            continue;
        out.push_back(
            {w.file, w.line, "AF023",
             "addLink watermark lambda captures by reference; a "
             "conservative-engine watermark runs on the consumer's "
             "thread, so capture by value and read the producer "
             "channel's stampWatermark() (acquire) instead",
             "watermark-lambda"});
    }
}

void
scanFile(const fs::path &path, const std::string &rel,
         std::vector<Finding> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        out.push_back({rel, 0, "AF000", "unreadable file"});
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string raw = buf.str();
    const std::string stripped = stripCommentsAndStrings(raw);
    const Suppressions sup = collectSuppressions(splitLines(raw));
    const std::vector<std::string> lines = splitLines(stripped);

    const bool under_src = rel.rfind("src/", 0) == 0;

    for (const LineRule &rule : lineRules()) {
        if (rule.srcOnly && !under_src)
            continue;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const int lineno = static_cast<int>(i) + 1;
            if (!std::regex_search(lines[i], rule.pattern))
                continue;
            if (sup.allows(lineno, rule.id))
                continue;
            out.push_back({rel, lineno, rule.id, rule.message});
        }
    }

    checkStatDescriptions(stripped, rel, sup, out);
    if (isHeader(path))
        checkIncludeGuard(stripped, rel, sup, out);

    const std::vector<Token> toks = tokenize(stripped);
    if (under_src && isHeader(path))
        checkRawIdentityParams(toks, rel, sup, out);
    checkTickCycleMixing(toks, rel, sup, out);
    checkNumberErasure(toks, rel, sup, out);
    if (under_src && !rawEscapeAllowlisted(rel))
        checkRawEscapes(toks, rel, sup, out);
    checkPowerOfTwoLiterals(toks, rel, sup, out);
    checkChannelBypass(toks, rel, sup, out);
    checkConcreteFlashTypes(toks, rel, sup, out);
    if (under_src) {
        collectUnorderedIteration(toks, rel, sup);
        collectOwnershipUses(toks, rel, sup);
        if (isHeader(path))
            collectOwnershipClasses(toks, rel, sup);
        checkPointerKeyedContainers(toks, rel, sup, out);
        checkMutableStaticState(toks, lines, rel, sup, out);
        checkChannelContractDeclared(toks, rel, sup, out);
        if (rel.rfind("src/sim/", 0) != 0)
            checkCrossDomainScheduling(toks, rel, sup, out);
    }
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/**
 * The measured domain-coupling graph (--ownership-report=PREFIX):
 * PREFIX.json + PREFIX.dot from the resolution-time edge lists. The
 * report deliberately includes baselined couplings — it is the
 * exec-group-split worklist (DESIGN.md §16), not the violation list.
 */
bool
writeOwnershipReport(const std::string &prefix)
{
    std::ofstream js(prefix + ".json");
    std::ofstream dot(prefix + ".dot");
    if (!js || !dot) {
        std::cerr << "aflint: cannot write ownership report to '"
                  << prefix << ".{json,dot}'\n";
        return false;
    }

    // Facade sync calls run FC-side when the callee is the BC
    // (service on the miss path) and BC-side when the callee is the
    // FC (install delivery under a channel drain).
    auto edgeDir = [](const std::string &callee) {
        return callee == "BacksideController" ? "fc->bc" : "bc->fc";
    };

    js << "{\n  \"domains\": [\"fc\", \"bc\"],\n";
    js << "  \"sync_calls\": [\n";
    for (std::size_t i = 0; i < g_own.syncEdges.size(); ++i) {
        const OwnershipState::SyncEdge &e = g_own.syncEdges[i];
        js << "    {\"method\": \"" << jsonEscape(e.callee)
           << "::" << jsonEscape(e.method) << "\", \"direction\": \""
           << edgeDir(e.callee) << "\", \"site\": \""
           << jsonEscape(e.file) << ":" << e.line << "\"}"
           << (i + 1 < g_own.syncEdges.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"shared_state\": [\n";
    for (std::size_t i = 0; i < g_own.sharedEdges.size(); ++i) {
        const OwnershipState::SharedEdge &e = g_own.sharedEdges[i];
        js << "    {\"type\": \"" << jsonEscape(e.type)
           << "\", \"holder\": \"" << jsonEscape(e.holder)
           << "::" << jsonEscape(e.member) << "\", \"holder_domain\": \""
           << jsonEscape(e.domain) << "\", \"owner_domain\": \""
           << jsonEscape(e.owner) << "\", \"site\": \""
           << jsonEscape(e.file) << ":" << e.line << "\"}"
           << (i + 1 < g_own.sharedEdges.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"channels\": [\n";
    std::vector<const OwnershipState::Member *> channels;
    for (const OwnershipState::Member &m : g_own.members) {
        if (m.isChannel)
            channels.push_back(&m);
    }
    for (std::size_t i = 0; i < channels.size(); ++i) {
        const OwnershipState::Member *m = channels[i];
        js << "    {\"holder\": \"" << jsonEscape(m->cls)
           << "::" << jsonEscape(m->name) << "\", \"domain\": \""
           << componentDomain(m->cls) << "\", \"site\": \""
           << jsonEscape(m->file) << ":" << m->line << "\"}"
           << (i + 1 < channels.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"traffic\": [\n";
    // Per-edge message classes, derived from the facade's channel
    // members: the DramCache names encode the direction (fcToBc,
    // bcToFcRsp, ...) and the parser's single-token type guess lands
    // on the template argument — the message class. The endpoint
    // count tallies every component-held channel member carrying the
    // same class (facade + both controllers), i.e. how many
    // declaration sites a message-format change has to visit.
    struct TrafficEdge {
        std::string message, edge, channel;
        int endpoints = 0;
    };
    std::vector<TrafficEdge> traffic;
    for (const OwnershipState::Member *m : channels) {
        if (m->cls != "DramCache")
            continue;
        const std::string &n = m->name;
        const std::string src = n.rfind("fc", 0) == 0 ? "fc" : "bc";
        // The flash leg stays inside the backside shard's domain
        // (the fabric slice is bc-owned).
        const std::string dst =
            n.find("ToFc") != std::string::npos ? "fc" : "bc";
        TrafficEdge e;
        e.message = m->type;
        e.edge = src + "->" + dst;
        e.channel = m->cls + "::" + n;
        for (const OwnershipState::Member *c : channels) {
            if (c->type == m->type)
                ++e.endpoints;
        }
        traffic.push_back(std::move(e));
    }
    for (std::size_t i = 0; i < traffic.size(); ++i) {
        const TrafficEdge &e = traffic[i];
        js << "    {\"message\": \"" << jsonEscape(e.message)
           << "\", \"edge\": \"" << e.edge << "\", \"channel\": \""
           << jsonEscape(e.channel) << "\", \"endpoints\": "
           << e.endpoints << "}"
           << (i + 1 < traffic.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"watermarks\": [\n";
    for (std::size_t i = 0; i < g_own.watermarks.size(); ++i) {
        const OwnershipState::Watermark &w = g_own.watermarks[i];
        js << "    {\"site\": \"" << jsonEscape(w.file) << ":"
           << w.line << "\", \"by_ref_capture\": "
           << (w.refCapture ? "true" : "false")
           << ", \"reads_stamp_watermark\": "
           << (w.usesWatermark ? "true" : "false") << "}"
           << (i + 1 < g_own.watermarks.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";

    dot << "digraph ownership {\n  rankdir=LR;\n"
        << "  fc [label=\"fc (frontside: cores + FC + facade + tags "
           "+ dram + footprint)\"];\n"
        << "  bc [label=\"bc (backside shard: BC + MSR + evict "
           "buffer + fabric slice)\"];\n";
    for (const TrafficEdge &e : traffic) {
        dot << "  " << (e.edge == "fc->bc" ? "fc -> bc" : "bc -> fc")
            << " [label=\"" << e.message << " via " << e.channel
            << " (" << e.endpoints << " endpoints)\"];\n";
    }
    for (const OwnershipState::SyncEdge &e : g_own.syncEdges) {
        const bool to_bc = e.callee == "BacksideController";
        dot << "  " << (to_bc ? "fc -> bc" : "bc -> fc")
            << " [label=\"" << e.callee << "::" << e.method << " ("
            << e.file << ":" << e.line << ")\"];\n";
    }
    for (const OwnershipState::SharedEdge &e : g_own.sharedEdges) {
        dot << "  " << e.domain << " -> "
            << (e.owner.empty() ? std::string("fc") : e.owner)
            << " [style=dashed, label=\"" << e.holder
            << "::" << e.member << " : " << e.type << "\"];\n";
    }
    for (const OwnershipState::Watermark &w : g_own.watermarks) {
        dot << "  fc -> bc [style=dotted, label=\"watermark "
            << w.file << ":" << w.line << "\"];\n";
    }
    dot << "}\n";
    return js.good() && dot.good();
}

/**
 * Baseline: reviewed long-lived findings keyed (rule, file, token) in
 * tools/aflint/baseline.json, replacing inline annotation noise for
 * couplings the roadmap already owns (the AF022 worklist, the
 * thread-local auditor attach points).
 */
struct BaselineEntry {
    std::string rule, file, token;
    int hits = 0;
};

bool
loadBaseline(const fs::path &path, std::vector<BaselineEntry> &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    static const std::regex obj("\\{[^{}]*\\}");
    static const std::regex kv(
        "\"(rule|file|token)\"\\s*:\\s*\"((?:\\\\.|[^\"\\\\])*)\"");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), obj);
         it != std::sregex_iterator(); ++it) {
        const std::string o = it->str();
        BaselineEntry e;
        for (auto k = std::sregex_iterator(o.begin(), o.end(), kv);
             k != std::sregex_iterator(); ++k) {
            std::string value = (*k)[2].str();
            std::string plain;
            for (std::size_t p = 0; p < value.size(); ++p) {
                if (value[p] == '\\' && p + 1 < value.size())
                    ++p;
                plain.push_back(value[p]);
            }
            const std::string key = (*k)[1].str();
            if (key == "rule")
                e.rule = plain;
            else if (key == "file")
                e.file = plain;
            else
                e.token = plain;
        }
        if (!e.rule.empty() && !e.file.empty())
            out.push_back(std::move(e));
    }
    return true;
}

bool
writeBaseline(const fs::path &path,
              const std::vector<Finding> &findings)
{
    std::set<std::string> seen;
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n  \"entries\": [\n";
    std::string sep;
    for (const Finding &f : findings) {
        const std::string key = f.rule + "\n" + f.file + "\n" + f.token;
        if (!seen.insert(key).second)
            continue;
        out << sep << "    {\"rule\": \"" << jsonEscape(f.rule)
            << "\", \"file\": \"" << jsonEscape(f.file)
            << "\", \"token\": \"" << jsonEscape(f.token) << "\"}";
        sep = ",\n";
    }
    out << "\n  ]\n}\n";
    return out.good();
}

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--root DIR] [--format=text|json] "
           "[--no-default-excludes] [baseline/report flags] "
           "[paths...]\n"
           "Scans src tools bench tests under DIR (default: .) "
           "unless explicit paths are given.\n"
           "--since REF scans only files changed since the git ref.\n"
           "Paths containing /fixtures/ are skipped unless "
           "--no-default-excludes is set.\n"
           "--baseline=FILE reads reviewed findings keyed "
           "(rule,file,token) [default: ROOT/tools/aflint/"
           "baseline.json]; --no-baseline disables it;\n"
           "--write-baseline regenerates the file from the current "
           "findings; --check fails on stale entries.\n"
           "--ownership-report=PREFIX writes the measured "
           "domain-coupling graph to PREFIX.json and PREFIX.dot "
           "(DESIGN.md §16).\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            opt.root = argv[++i];
        } else if (arg == "--format=json") {
            opt.json = true;
        } else if (arg == "--format=text") {
            opt.json = false;
        } else if (arg == "--since" && i + 1 < argc) {
            opt.sinceRef = argv[++i];
        } else if (arg == "--no-default-excludes") {
            opt.defaultExcludes = false;
        } else if (arg.rfind("--baseline=", 0) == 0) {
            opt.baselinePath = arg.substr(std::string("--baseline=").size());
        } else if (arg == "--no-baseline") {
            opt.noBaseline = true;
        } else if (arg == "--write-baseline") {
            opt.writeBaseline = true;
        } else if (arg == "--check") {
            opt.checkBaseline = true;
        } else if (arg.rfind("--ownership-report=", 0) == 0) {
            opt.reportPrefix =
                arg.substr(std::string("--ownership-report=").size());
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            opt.paths.push_back(arg);
        }
    }
    if (opt.paths.empty())
        opt.paths = {"src", "tools", "bench", "tests"};

    const fs::path root(opt.root);
    if (!fs::is_directory(root)) {
        std::cerr << "aflint: no such directory: " << opt.root << "\n";
        return 2;
    }

    if (!opt.sinceRef.empty()) {
        // Diff mode: replace the scan roots with the source files git
        // reports as changed since the ref (pre-commit usage; the
        // full-tree scan stays the CI gate).
        // --name-status -M so renames are recognized as renames: a
        // pure rename (R100) carries no new code and is skipped
        // outright instead of re-reporting every pre-existing finding
        // under the moved path; a rename with edits (R0xx) scans the
        // new path like any modification.
        const std::string cmd = "git -C '" + opt.root +
                                "' diff --name-status -M '" +
                                opt.sinceRef + "' --";
        FILE *pipe = popen(cmd.c_str(), "r");
        if (pipe == nullptr) {
            std::cerr << "aflint: cannot run git diff\n";
            return 2;
        }
        std::string listing;
        char chunk[4096];
        std::size_t got = 0;
        while ((got = fread(chunk, 1, sizeof chunk, pipe)) > 0)
            listing.append(chunk, got);
        if (pclose(pipe) != 0) {
            std::cerr << "aflint: git diff against '" << opt.sinceRef
                      << "' failed\n";
            return 2;
        }
        opt.paths.clear();
        std::istringstream names(listing);
        std::string entry;
        while (std::getline(names, entry)) {
            // Each line is "STATUS\tpath" or "Rnnn\told\tnew".
            const std::size_t tab = entry.find('\t');
            if (tab == std::string::npos)
                continue;
            const std::string status = entry.substr(0, tab);
            std::string name = entry.substr(tab + 1);
            if (status.empty() || status[0] == 'D' ||
                status == "R100" || status == "C100")
                continue;
            if (status[0] == 'R' || status[0] == 'C') {
                const std::size_t tab2 = name.find('\t');
                if (tab2 == std::string::npos)
                    continue;
                name = name.substr(tab2 + 1);
            }
            if (name.empty() || !isSourceFile(fs::path(name)))
                continue;
            if (fs::is_regular_file(root / name))
                opt.paths.push_back(name);
        }
        if (opt.paths.empty()) {
            std::cout << "aflint: no changed source files since "
                      << opt.sinceRef << "\n";
            return 0;
        }
    }

    std::vector<Finding> findings;
    std::size_t files_scanned = 0;
    for (const std::string &sub : opt.paths) {
        const fs::path base = root / sub;
        if (!fs::exists(base)) {
            std::cerr << "aflint: no such path: " << base.string()
                      << "\n";
            return 2;
        }
        std::vector<fs::path> files;
        if (fs::is_regular_file(base)) {
            files.push_back(base);
        } else {
            for (const auto &entry :
                 fs::recursive_directory_iterator(base)) {
                if (entry.is_regular_file() &&
                    isSourceFile(entry.path()))
                    files.push_back(entry.path());
            }
        }
        std::sort(files.begin(), files.end());
        for (const fs::path &f : files) {
            const std::string rel =
                fs::relative(f, root).generic_string();
            if (opt.defaultExcludes &&
                rel.find("fixtures/") != std::string::npos)
                continue;
            ++files_scanned;
            scanFile(f, rel, findings);
        }
    }
    resolveUnorderedIteration(findings);
    resolveOwnership(findings);

    if (!opt.reportPrefix.empty() &&
        !writeOwnershipReport(opt.reportPrefix))
        return 2;

    const fs::path baseline_path =
        opt.baselinePath.empty()
            ? root / "tools" / "aflint" / "baseline.json"
            : fs::path(opt.baselinePath);
    if (opt.writeBaseline) {
        if (!writeBaseline(baseline_path, findings)) {
            std::cerr << "aflint: cannot write baseline '"
                      << baseline_path.string() << "'\n";
            return 2;
        }
        std::cout << "aflint: baseline written to "
                  << baseline_path.string() << " ("
                  << findings.size() << " finding(s))\n";
        return 0;
    }
    std::vector<BaselineEntry> baseline;
    if (!opt.noBaseline && fs::is_regular_file(baseline_path)) {
        if (!loadBaseline(baseline_path, baseline)) {
            std::cerr << "aflint: cannot read baseline '"
                      << baseline_path.string() << "'\n";
            return 2;
        }
    } else if (!opt.baselinePath.empty() && !opt.noBaseline) {
        std::cerr << "aflint: no such baseline: " << opt.baselinePath
                  << "\n";
        return 2;
    }
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (Finding &f : findings) {
        bool matched = false;
        for (BaselineEntry &e : baseline) {
            if (e.rule == f.rule && e.file == f.file &&
                e.token == f.token) {
                ++e.hits;
                matched = true;
                break;
            }
        }
        if (!matched)
            kept.push_back(std::move(f));
    }
    int stale = 0;
    for (const BaselineEntry &e : baseline) {
        if (e.hits != 0)
            continue;
        ++stale;
        std::cerr << "aflint: stale baseline entry: " << e.rule << " "
                  << e.file << " '" << e.token << "'"
                  << (opt.checkBaseline ? "" : " (warning)") << "\n";
    }

    for (const Finding &f : kept) {
        if (opt.json) {
            std::cout << "{\"file\":\"" << jsonEscape(f.file)
                      << "\",\"line\":" << f.line << ",\"rule\":\""
                      << f.rule << "\",\"token\":\""
                      << jsonEscape(f.token) << "\",\"message\":\""
                      << jsonEscape(f.message) << "\"}\n";
        } else {
            std::cout << f.file << ":" << f.line << ": " << f.rule
                      << ": " << f.message << "\n";
        }
    }
    if (!opt.json) {
        std::cout << "aflint: " << files_scanned << " files, "
                  << kept.size() << " finding(s)";
        if (!baseline.empty()) {
            std::cout << ", " << findings.size() - kept.size()
                      << " baselined";
        }
        std::cout << "\n";
    }
    if (opt.checkBaseline && stale != 0)
        return 1;
    return kept.empty() ? 0 : 1;
}
