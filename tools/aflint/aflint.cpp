/**
 * @file
 * aflint: AstriFlash repository lint.
 *
 * A fast, dependency-free token/regex scan that enforces the
 * simulator's determinism and hygiene rules over src/, tools/, bench/
 * and tests/ (see DESIGN.md §8 for the rationale behind each rule):
 *
 *   AF001  no wall-clock or libc randomness in simulator code
 *   AF002  no raw new/delete expressions (use RAII owners)
 *   AF003  no stdout writes from library code under src/
 *   AF004  every stats registration carries a description
 *   AF005  every header has an include guard
 *   AF006  no signed integer truncation of Tick values
 *   AF007  no bare assert() under src/ (use ASTRI_ASSERT / SIM_CHECK)
 *
 * Comments and string literals are stripped (newlines preserved)
 * before matching, so prose never trips a rule. Intentional
 * exceptions are annotated in a comment on the offending line:
 *
 *     // aflint-allow(AF001): host-time library by design
 *
 * or for a whole file, anywhere in it:
 *
 *     // aflint-allow-file(AF001): <reason>
 *
 * Exit status: 0 when clean, 1 when findings were reported, 2 on
 * usage or I/O errors. --format=json emits one JSON object per
 * finding (JSONL) for machine consumption in CI.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

struct Options {
    std::string root = ".";
    std::vector<std::string> paths; ///< Scan roots relative to root.
    bool json = false;
    bool defaultExcludes = true;
};

/** One lint rule: a regex applied per line of the stripped source. */
struct LineRule {
    const char *id;
    const char *message;
    std::regex pattern;
    bool srcOnly; ///< Only enforced for files under src/.
};

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".hh" ||
           ext == ".h" || ext == ".hpp";
}

bool
isHeader(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".h" || ext == ".hpp";
}

/**
 * Blank out comments, string literals and char literals, preserving
 * newlines so findings keep their line numbers. Quote characters are
 * kept so argument-list scans still see the (emptied) literals.
 */
std::string
stripCommentsAndStrings(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    std::size_t i = 0;
    const std::size_t n = in.size();

    auto keepNewlines = [&out](const std::string &s, std::size_t from,
                               std::size_t to) {
        for (std::size_t k = from; k < to; ++k)
            out.push_back(s[k] == '\n' ? '\n' : ' ');
    };

    while (i < n) {
        const char c = in[i];
        if (c == '/' && i + 1 < n && in[i + 1] == '/') {
            const std::size_t end = in.find('\n', i);
            const std::size_t stop = end == std::string::npos ? n : end;
            keepNewlines(in, i, stop);
            i = stop;
        } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
            const std::size_t end = in.find("*/", i + 2);
            const std::size_t stop =
                end == std::string::npos ? n : end + 2;
            keepNewlines(in, i, stop);
            i = stop;
        } else if (c == '"' &&
                   (i == 0 ||
                    !(std::isalnum(static_cast<unsigned char>(
                          in[i - 1])) ||
                      in[i - 1] == '_') ||
                    in[i - 1] == 'R')) {
            // Raw string literal: R"delim( ... )delim".
            if (i > 0 && in[i - 1] == 'R') {
                std::size_t p = i + 1;
                std::string delim;
                while (p < n && in[p] != '(')
                    delim.push_back(in[p++]);
                const std::string closer = ")" + delim + "\"";
                const std::size_t end = in.find(closer, p);
                const std::size_t stop = end == std::string::npos
                                             ? n
                                             : end + closer.size();
                out.push_back('"');
                keepNewlines(in, i + 1, stop > i + 1 ? stop - 1 : i + 1);
                if (stop > i + 1)
                    out.push_back('"');
                i = stop;
                continue;
            }
            out.push_back('"');
            ++i;
            while (i < n && in[i] != '"') {
                if (in[i] == '\\' && i + 1 < n)
                    ++i;
                out.push_back(in[i] == '\n' ? '\n' : ' ');
                ++i;
            }
            if (i < n) {
                out.push_back('"');
                ++i;
            }
        } else if (c == '\'') {
            out.push_back('\'');
            ++i;
            while (i < n && in[i] != '\'') {
                if (in[i] == '\\' && i + 1 < n)
                    ++i;
                out.push_back(' ');
                ++i;
            }
            if (i < n) {
                out.push_back('\'');
                ++i;
            }
        } else {
            out.push_back(c);
            ++i;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line))
        lines.push_back(line);
    return lines;
}

/**
 * Suppressions live in the raw (unstripped) text: same-line
 * aflint-allow(AFnnn), preceding-line aflint-allow-next-line(AFnnn),
 * and per-file aflint-allow-file(AFnnn).
 */
struct Suppressions {
    std::set<std::pair<int, std::string>> lines;
    std::set<std::string> wholeFile;

    bool
    allows(int line, const std::string &rule) const
    {
        return wholeFile.count(rule) != 0 ||
               lines.count({line, rule}) != 0;
    }
};

Suppressions
collectSuppressions(const std::vector<std::string> &raw_lines)
{
    static const std::regex allow_re(
        "aflint-allow(-file|-next-line)?\\((AF[0-9]{3})\\)");
    Suppressions sup;
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
        auto begin = std::sregex_iterator(raw_lines[i].begin(),
                                          raw_lines[i].end(), allow_re);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::string scope = (*it)[1].str();
            const std::string rule = (*it)[2].str();
            if (scope == "-file")
                sup.wholeFile.insert(rule);
            else if (scope == "-next-line")
                sup.lines.insert({static_cast<int>(i) + 2, rule});
            else
                sup.lines.insert({static_cast<int>(i) + 1, rule});
        }
    }
    return sup;
}

const std::vector<LineRule> &
lineRules()
{
    static const std::vector<LineRule> rules = {
        {"AF001",
         "wall-clock / libc randomness breaks determinism; use the "
         "event queue's tick clock and sim::Rng",
         std::regex("std::chrono::(system|steady|high_resolution)_"
                    "clock|\\bgettimeofday\\b|\\bclock_gettime\\b|"
                    "\\btime\\s*\\(|\\brand\\s*\\(|\\bsrand\\s*\\(|"
                    "\\brandom\\s*\\("),
         false},
        {"AF002",
         "raw new/delete; own memory with std::unique_ptr / "
         "containers",
         std::regex("\\bnew\\s+[A-Za-z_(:<]|\\bdelete\\s*(\\[\\s*\\]"
                    "\\s*)?[A-Za-z_(:*]"),
         false},
        {"AF003",
         "stdout write from library code; report through stats / "
         "ASTRI_WARN instead",
         std::regex("std::cout\\b|\\bprintf\\s*\\(|\\bputs\\s*\\("),
         true},
        {"AF006",
         "signed integer truncation of a Tick value; Ticks are "
         "uint64 picoseconds",
         std::regex("static_cast<(int|long|std::int32_t|std::int64_t)"
                    ">\\s*\\([^()]*([tT]ick|curTick\\(\\))"),
         false},
        {"AF007",
         "bare assert(); use ASTRI_ASSERT / SIM_CHECK so Release "
         "builds can arm it",
         std::regex("\\bassert\\s*\\(|#\\s*include\\s*<cassert>"),
         true},
    };
    return rules;
}

/**
 * AF004: every stats registration names what it counts. Finds
 * register{Counter,Uint,Average,Histogram}( call sites and counts
 * top-level arguments across lines: fewer than three means the
 * trailing description is missing.
 */
void
checkStatDescriptions(const std::string &stripped,
                      const std::string &file,
                      const Suppressions &sup,
                      std::vector<Finding> &out)
{
    static const std::regex call_re(
        "register(Counter|Uint|Average|Histogram)\\s*\\(");
    auto begin = std::sregex_iterator(stripped.begin(), stripped.end(),
                                      call_re);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::size_t open =
            static_cast<std::size_t>(it->position()) +
            it->length() - 1;
        int depth = 0;
        int args = 1;
        bool closed = false;
        for (std::size_t p = open; p < stripped.size(); ++p) {
            const char c = stripped[p];
            if (c == '(' || c == '[' || c == '{' || c == '<') {
                // '<' heuristically tracks template args; stray
                // comparisons never appear inside these call sites.
                ++depth;
            } else if (c == ')' || c == ']' || c == '}' || c == '>') {
                --depth;
                if (depth == 0 && c == ')') {
                    closed = true;
                    break;
                }
            } else if (c == ',' && depth == 1) {
                ++args;
            }
        }
        const int line = 1 + static_cast<int>(std::count(
                                 stripped.begin(),
                                 stripped.begin() +
                                     static_cast<long>(it->position()),
                                 '\n'));
        if (closed && args < 3 && !sup.allows(line, "AF004")) {
            out.push_back(
                {file, line, "AF004",
                 "stats registration is missing its description "
                 "argument"});
        }
    }
}

/** AF005: headers must open an include guard before any code. */
void
checkIncludeGuard(const std::string &stripped, const std::string &file,
                  const Suppressions &sup, std::vector<Finding> &out)
{
    static const std::regex guard_re("#\\s*ifndef\\s+[A-Za-z_]");
    static const std::regex pragma_re("#\\s*pragma\\s+once");
    if (std::regex_search(stripped, guard_re) ||
        std::regex_search(stripped, pragma_re))
        return;
    if (!sup.allows(1, "AF005"))
        out.push_back({file, 1, "AF005",
                       "header has no include guard"});
}

void
scanFile(const fs::path &path, const std::string &rel,
         std::vector<Finding> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        out.push_back({rel, 0, "AF000", "unreadable file"});
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string raw = buf.str();
    const std::string stripped = stripCommentsAndStrings(raw);
    const Suppressions sup = collectSuppressions(splitLines(raw));
    const std::vector<std::string> lines = splitLines(stripped);

    const bool under_src = rel.rfind("src/", 0) == 0;

    for (const LineRule &rule : lineRules()) {
        if (rule.srcOnly && !under_src)
            continue;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const int lineno = static_cast<int>(i) + 1;
            if (!std::regex_search(lines[i], rule.pattern))
                continue;
            if (sup.allows(lineno, rule.id))
                continue;
            out.push_back({rel, lineno, rule.id, rule.message});
        }
    }

    checkStatDescriptions(stripped, rel, sup, out);
    if (isHeader(path))
        checkIncludeGuard(stripped, rel, sup, out);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

int
usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--root DIR] [--format=text|json] "
           "[--no-default-excludes] [paths...]\n"
           "Scans src tools bench tests under DIR (default: .) "
           "unless explicit paths are given.\n"
           "Paths containing /fixtures/ are skipped unless "
           "--no-default-excludes is set.\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            opt.root = argv[++i];
        } else if (arg == "--format=json") {
            opt.json = true;
        } else if (arg == "--format=text") {
            opt.json = false;
        } else if (arg == "--no-default-excludes") {
            opt.defaultExcludes = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            opt.paths.push_back(arg);
        }
    }
    if (opt.paths.empty())
        opt.paths = {"src", "tools", "bench", "tests"};

    const fs::path root(opt.root);
    if (!fs::is_directory(root)) {
        std::cerr << "aflint: no such directory: " << opt.root << "\n";
        return 2;
    }

    std::vector<Finding> findings;
    std::size_t files_scanned = 0;
    for (const std::string &sub : opt.paths) {
        const fs::path base = root / sub;
        if (!fs::exists(base)) {
            std::cerr << "aflint: no such path: " << base.string()
                      << "\n";
            return 2;
        }
        std::vector<fs::path> files;
        if (fs::is_regular_file(base)) {
            files.push_back(base);
        } else {
            for (const auto &entry :
                 fs::recursive_directory_iterator(base)) {
                if (entry.is_regular_file() &&
                    isSourceFile(entry.path()))
                    files.push_back(entry.path());
            }
        }
        std::sort(files.begin(), files.end());
        for (const fs::path &f : files) {
            const std::string rel =
                fs::relative(f, root).generic_string();
            if (opt.defaultExcludes &&
                rel.find("fixtures/") != std::string::npos)
                continue;
            ++files_scanned;
            scanFile(f, rel, findings);
        }
    }

    for (const Finding &f : findings) {
        if (opt.json) {
            std::cout << "{\"file\":\"" << jsonEscape(f.file)
                      << "\",\"line\":" << f.line << ",\"rule\":\""
                      << f.rule << "\",\"message\":\""
                      << jsonEscape(f.message) << "\"}\n";
        } else {
            std::cout << f.file << ":" << f.line << ": " << f.rule
                      << ": " << f.message << "\n";
        }
    }
    if (!opt.json) {
        std::cout << "aflint: " << files_scanned << " files, "
                  << findings.size() << " finding(s)\n";
    }
    return findings.empty() ? 0 : 1;
}
