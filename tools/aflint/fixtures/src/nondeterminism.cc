/**
 * @file
 * Deliberately nondeterministic source for the aflint v3 negative
 * tests: each construct below violates one of the determinism rules
 * AF015-AF018, so the per-rule fixture tests must report them. Never
 * compiled.
 */

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

namespace fixture {

struct Job {
    std::uint64_t id;
    int priority;
};

// AF017: mutable namespace-scope state without a storage keyword.
int g_jobsRetired = 0;

// AF017: static-storage mutable state.
static std::uint64_t s_lastTick = 0;

// AF016: ordering over raw addresses varies with the allocator.
std::set<Job *> byAddress;

struct Tracker {
    std::unordered_map<std::uint64_t, Job> pendingJobs;

    std::uint64_t
    drainInOrder()
    {
        std::uint64_t retired = 0;
        // AF015: hash iteration order decides retire order.
        for (const auto &[id, job] : pendingJobs) {
            retired += id + static_cast<std::uint64_t>(job.priority);
            ++g_jobsRetired;
        }
        s_lastTick = retired;
        return retired;
    }
};

template <typename T> struct BoundedChannel {
    BoundedChannel(std::string name, std::uint32_t capacity);
};

std::unique_ptr<BoundedChannel<Job>>
makeUncertifiedChannel()
{
    // AF018: no ChannelContract — the channel declares no lookahead.
    return std::make_unique<BoundedChannel<Job>>("fixture.chan", 64u);
}

struct FixtureQueue {
    void schedule(std::uint64_t when);
    void scheduleIn(std::uint64_t delta);
};

struct OtherDomain {
    FixtureQueue &eventQueue();
};

void
injectAcrossDomains(OtherDomain &peer)
{
    // AF019: scheduling through another component's eventQueue()
    // accessor bypasses the channel seam and the engine's mailbox.
    peer.eventQueue().schedule(100);
    peer.eventQueue().scheduleIn(10);
}

} // namespace fixture
