/**
 * @file
 * AF008-AF012 seeds: unit/identifier safety violations for the aflint
 * negative tests. Lives under a fixture-local src/ so the src-scoped
 * rules (AF008, AF011) fire when scanned with
 * `aflint --root tools/aflint/fixtures src`. Never compiled.
 */

#ifndef AFLINT_FIXTURE_UNIT_SAFETY_HH
#define AFLINT_FIXTURE_UNIT_SAFETY_HH

#include <cstdint>

namespace fixture {

struct Cache {
    // AF008: raw-integer identity parameters in a public header.
    void fill(std::uint64_t page, std::uint32_t way);
    bool contains(std::uint64_t set, std::uint64_t lpn) const;
};

inline std::uint64_t
erased(std::uint64_t addr)
{
    // AF010: the unit pageNumber() just attached is thrown away.
    std::uint64_t page = pageNumber(addr);
    // AF011: strong-type escape outside the conversion headers.
    return page + PageNum(addr).raw();
}

inline std::uint64_t
mixed(std::uint64_t busCycles)
{
    // AF009: a cycle count flows into a tick quantity unconverted.
    Ticks deadline = busCycles + 5;
    // AF012: 96 is not a power of two.
    return deadline + alignUp(busCycles, 96);
}

} // namespace fixture

#endif // AFLINT_FIXTURE_UNIT_SAFETY_HH
