/**
 * @file
 * AF021 + AF023 seeds: synchronous FC<->BC calls from outside the
 * controllers' own files and the facade's allowlisted pump, plus an
 * addLink watermark lambda capturing by reference. Never compiled.
 */

#include "backside_controller.hh"
#include "frontside_controller.hh"

namespace fixture {

void
pumpFromTheWrongPlace(FrontsideController &fc, BacksideController &bc,
                      const EvictBuffer &buf)
{
    // AF021: `probe` is attributable to the frontside controller
    // alone; calling it from a random translation unit crosses the
    // domain boundary synchronously.
    (void)fc.probe(buf);

    // AF021: same crossing in the other direction — `notify` belongs
    // to the backside controller.
    bc.notify(fc);
}

struct Engine {
    void addLink(int src, int dst, int lookahead, void *watermark);
};

void
wireLinks(Engine &engine, int &depth)
{
    // AF023: the watermark lambda captures `depth` by reference; a
    // conservative engine runs it on the consumer's thread, so it
    // must capture by value and read the producer channel's
    // acquire-stamped watermark instead.
    engine.addLink(0, 1, 10, [&depth] { return depth; });
}

} // namespace fixture
