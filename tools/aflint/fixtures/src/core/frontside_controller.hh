/**
 * @file
 * AF013 seeds: a frontside controller that reaches around the channel
 * layer. Lives at the controller's canonical fixture-local path so the
 * path-scoped rule engages when scanned with
 * `aflint --root tools/aflint/fixtures src`. Never compiled.
 */

#ifndef AFLINT_FIXTURE_FRONTSIDE_CONTROLLER_HH
#define AFLINT_FIXTURE_FRONTSIDE_CONTROLLER_HH

namespace fixture {

class BacksideController;
class EvictBuffer;

struct FrontsideController {
    // AF013: the frontside holding a backside reference is a direct
    // call path around fc_to_bc.
    BacksideController *bc = nullptr;

    // AF013: peeking into the backside-owned evict buffer.
    bool probe(const EvictBuffer &buf) const;
};

} // namespace fixture

#endif // AFLINT_FIXTURE_FRONTSIDE_CONTROLLER_HH
