/**
 * @file
 * AF013 seeds: a frontside controller that reaches around the channel
 * layer. Lives at the controller's canonical fixture-local path so the
 * path-scoped rule engages when scanned with
 * `aflint --root tools/aflint/fixtures src`. Never compiled.
 */

#ifndef AFLINT_FIXTURE_FRONTSIDE_CONTROLLER_HH
#define AFLINT_FIXTURE_FRONTSIDE_CONTROLLER_HH

namespace fixture {

class BacksideController;
class EvictBuffer;
class Dram;

struct FrontsideController {
    // AF013 + AF020: the frontside holding a backside reference is a
    // direct call path around fc_to_bc, and a raw cross-domain edge.
    BacksideController *bc = nullptr;

    // AF022 (with the backside's copy): mutable state reachable from
    // both domains with no value owner declaring ownership.
    Dram &sharedDram;

    // AF013: peeking into the backside-owned evict buffer.
    bool probe(const EvictBuffer &buf) const;
};

} // namespace fixture

#endif // AFLINT_FIXTURE_FRONTSIDE_CONTROLLER_HH
