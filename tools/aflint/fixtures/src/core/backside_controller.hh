/**
 * @file
 * AF013 seeds, backside direction: a backside controller that calls
 * the flash device and the frontside directly instead of using the
 * bc_to_flash / bc_to_fc channels. Never compiled.
 */

#ifndef AFLINT_FIXTURE_BACKSIDE_CONTROLLER_HH
#define AFLINT_FIXTURE_BACKSIDE_CONTROLLER_HH

namespace fixture {

class FlashDevice;
class FrontsideController;
class Dram;

struct BacksideController {
    // AF013: issuing flash reads by device pointer bypasses
    // bc_to_flash (the facade owns the device pump).
    FlashDevice *flash = nullptr;

    // AF020: a backside shard holding the frontside by reference is
    // the reverse raw cross-domain edge.
    FrontsideController *front = nullptr;

    // AF022 (with the frontside's copy): mutable state reachable from
    // both domains with no value owner declaring ownership.
    Dram &sharedDram;

    // AF013: waking the frontside by direct call bypasses bc_to_fc.
    void notify(FrontsideController &fc);
};

} // namespace fixture

#endif // AFLINT_FIXTURE_BACKSIDE_CONTROLLER_HH
