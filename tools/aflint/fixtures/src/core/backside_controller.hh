/**
 * @file
 * AF013 seeds, backside direction: a backside controller that calls
 * the flash device and the frontside directly instead of using the
 * bc_to_flash / bc_to_fc channels. Never compiled.
 */

#ifndef AFLINT_FIXTURE_BACKSIDE_CONTROLLER_HH
#define AFLINT_FIXTURE_BACKSIDE_CONTROLLER_HH

namespace fixture {

class FlashDevice;
class FrontsideController;

struct BacksideController {
    // AF013: issuing flash reads by device pointer bypasses
    // bc_to_flash (the facade owns the device pump).
    FlashDevice *flash = nullptr;

    // AF013: waking the frontside by direct call bypasses bc_to_fc.
    void notify(FrontsideController &fc);
};

} // namespace fixture

#endif // AFLINT_FIXTURE_BACKSIDE_CONTROLLER_HH
