/**
 * @file
 * AF014 seeds: core-layer code that names concrete flash device
 * models instead of going through the abstract flash::Backend.
 * Never compiled.
 */

#ifndef AFLINT_FIXTURE_DEVICE_LEAK_HH
#define AFLINT_FIXTURE_DEVICE_LEAK_HH

namespace fixture {

class FlashDevice;
class ZnsDevice;
class Ftl;

struct CacheFacade {
    // AF014: holding the FTL device by concrete type pins the cache
    // to one back-end; the facade must hold a flash::Backend &.
    FlashDevice *ftlDev = nullptr;

    // AF014: same leak for the log-structured model.
    ZnsDevice *znsDev = nullptr;

    // AF014: reaching past the device into its mapping layer.
    Ftl *mapping = nullptr;
};

} // namespace fixture

#endif // AFLINT_FIXTURE_DEVICE_LEAK_HH
