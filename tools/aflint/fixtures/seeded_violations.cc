/**
 * @file
 * Deliberately broken source for the aflint negative test: every
 * construct below violates a lint rule, so a scan of this directory
 * (with default excludes disabled) must exit non-zero. Never compiled.
 */

#include <chrono>
#include <cstdlib>

#include "bad_header.hh"

namespace fixture {

unsigned long long
wallClockNow()
{
    // AF001: wall-clock read inside simulator code.
    const auto now = std::chrono::system_clock::now();
    // AF001: libc randomness.
    const int jitter = rand() % 7;
    return static_cast<unsigned long long>(
               now.time_since_epoch().count()) +
           static_cast<unsigned long long>(jitter);
}

int *
leakyAlloc()
{
    // AF002: raw allocation without an owner.
    int *p = new int(42);
    return p;
}

void
leakyFree(int *p)
{
    // AF002: raw delete.
    delete p;
}

struct FakeRegistry {
    void registerCounter(const char *name, const void *counter);
    void registerCounter(const char *name, const void *counter,
                         const char *desc);
};

void
undescribedStat(FakeRegistry &reg, const void *counter)
{
    // AF004: stats registration without a description argument.
    reg.registerCounter("mystery_counter", counter);
}

unsigned
truncatedTick(unsigned long long cur_tick)
{
    // AF006: signed truncation of a Tick value.
    return static_cast<unsigned>(static_cast<int>(cur_tick));
}

} // namespace fixture
