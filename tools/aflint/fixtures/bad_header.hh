/**
 * @file
 * AF005 seed: a header with no include guard (and no pragma once).
 * Part of the aflint negative-test fixtures; never compiled.
 */

namespace fixture {

struct Unguarded {
    int value = 0;
};

} // namespace fixture
