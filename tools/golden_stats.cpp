/**
 * @file
 * golden_stats — fixed-seed golden stats-JSON driver.
 *
 * Runs one of the six invariant-torture configurations (the same set
 * test_invariants.cpp sweeps, tatp closed- and open-loop included) at
 * its fixed seed and writes the headline results plus the full
 * hierarchical stats tree as JSON. The files under tests/golden/ were
 * captured from the pre-strong-type tree; the golden_stats_* ctests
 * re-run each case and require byte-identical output, so any refactor
 * that changes simulated arithmetic — not just schema — fails loudly.
 *
 *   golden_stats --list
 *   golden_stats --case=astriflash_tatp --out=stats.json
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/json.hh"
#include "sim/option_parser.hh"

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

struct GoldenCase {
    const char *name;
    SystemKind kind;
    workload::Kind workload;
    std::uint64_t seed;
    bool footprint;
    bool openLoop;
};

// Mirrors kTortureCases in tests/test_invariants.cpp: one case per
// system-kind/workload mix, fixed seeds, tatp both closed and open.
constexpr GoldenCase kCases[] = {
    {"astriflash_tatp", SystemKind::AstriFlash, workload::Kind::Tatp, 1,
     false, false},
    {"astriflash_silo_footprint", SystemKind::AstriFlash,
     workload::Kind::Silo, 2, true, false},
    {"nops_tpcc", SystemKind::AstriFlashNoPS, workload::Kind::Tpcc, 3,
     false, false},
    {"nodp_hashtable", SystemKind::AstriFlashNoDP,
     workload::Kind::HashTable, 4, false, false},
    {"flashsync_arrayswap", SystemKind::FlashSync,
     workload::Kind::ArraySwap, 5, false, false},
    {"astriflash_tatp_openloop", SystemKind::AstriFlash,
     workload::Kind::Tatp, 6, false, true},
};

/** The smallCfg used by the torture suite, verbatim. */
SystemConfig
caseConfig(const GoldenCase &gc)
{
    SystemConfig cfg;
    cfg.kind = gc.kind;
    cfg.cores = 2;
    cfg.workloadKind = gc.workload;
    cfg.workload.datasetBytes = 64ull << 20;
    cfg.warmupJobs = 100;
    cfg.measureJobs = 400;
    cfg.invariantInterval = sim::microseconds(50);
    cfg.seed = gc.seed;
    if (gc.footprint)
        cfg.dramCache.footprintEnabled = true;
    if (gc.openLoop)
        cfg.meanInterarrival = sim::microseconds(5);
    return cfg;
}

void
writeGoldenJson(std::ostream &os, const GoldenCase &gc,
                const RunResults &r, const System &sys)
{
    sim::JsonWriter w(os);
    w.beginObject();

    w.key("config");
    w.beginObject();
    w.field("case", gc.name);
    w.field("kind", systemKindName(gc.kind));
    w.field("workload", workload::kindName(gc.workload));
    w.field("seed", gc.seed);
    w.endObject();

    w.key("results");
    w.beginObject();
    w.field("jobs", r.jobs);
    w.field("throughput_jobs_per_sec", r.throughputJobsPerSec);
    w.field("avg_service_us", r.avgServiceUs());
    w.field("p50_service_us", r.serviceUs(0.50));
    w.field("p99_service_us", r.serviceUs(0.99));
    w.field("p999_service_us", r.serviceUs(0.999));
    w.field("avg_response_us", r.avgResponseUs());
    w.field("p99_response_us", r.responseUs(0.99));
    w.field("dram_cache_hit_ratio", r.dramCacheHitRatio);
    w.field("avg_exec_between_misses_us", r.avgExecBetweenMissesUs);
    w.field("flash_reads", r.flashReads);
    w.field("flash_writes", r.flashWrites);
    w.field("gc_blocked_reads", r.gcBlockedReads);
    w.field("shootdowns", r.shootdowns);
    w.field("peak_outstanding_misses", r.peakOutstandingMisses);
    w.endObject();

    w.key("stats");
    sys.statsRegistry().writeJson(w);

    w.endObject();
    os << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string case_name;
    std::string out_file;
    bool list = false;

    sim::OptionParser opts(
        "golden_stats",
        "Run one fixed-seed torture configuration and write its full "
        "stats tree as JSON for golden-file comparison.");
    opts.addString("case", &case_name, "configuration name (--list)");
    opts.addString("out", &out_file,
                   "output JSON file (- for stdout)");
    opts.addFlag("list", &list, "print the known case names");
    opts.parseOrExit(argc, argv);

    if (list) {
        for (const GoldenCase &gc : kCases)
            std::printf("%s\n", gc.name);
        return 0;
    }

    const GoldenCase *chosen = nullptr;
    for (const GoldenCase &gc : kCases) {
        if (case_name == gc.name)
            chosen = &gc;
    }
    if (chosen == nullptr) {
        std::fprintf(stderr,
                     "golden_stats: unknown --case '%s' (try --list)\n",
                     case_name.c_str());
        return 2;
    }

    System sys(caseConfig(*chosen));
    const RunResults r = sys.run();

    if (out_file.empty() || out_file == "-") {
        writeGoldenJson(std::cout, *chosen, r, sys);
    } else {
        std::ofstream out(out_file);
        if (!out) {
            std::fprintf(stderr, "golden_stats: cannot open '%s'\n",
                         out_file.c_str());
            return 1;
        }
        writeGoldenJson(out, *chosen, r, sys);
    }
    return 0;
}
