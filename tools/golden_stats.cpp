/**
 * @file
 * golden_stats — fixed-seed golden stats-JSON driver.
 *
 * Runs one of the six invariant-torture configurations (the same set
 * test_invariants.cpp sweeps, tatp closed- and open-loop included) at
 * its fixed seed and writes the headline results plus the full
 * hierarchical stats tree as JSON. The files under tests/golden/ were
 * captured from the pre-strong-type tree; the golden_stats_* ctests
 * re-run each case and require byte-identical output, so any refactor
 * that changes simulated arithmetic — not just schema — fails loudly.
 *
 * The case table and serialisation live in golden_cases.hh, shared
 * with the test_fcbc_suite in-process regression.
 *
 *   golden_stats --list
 *   golden_stats --case=astriflash_tatp --out=stats.json
 *
 * --host-jobs=N runs the case on the conservative parallel engine;
 * the output must stay byte-identical to the committed golden at any
 * N (the CI host-jobs matrix pins {1,2,4}).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/option_parser.hh"

#include "golden_cases.hh"

using namespace astriflash;
using namespace astriflash::core;
using namespace astriflash::tools;

int
main(int argc, char **argv)
{
    std::string case_name;
    std::string out_file;
    bool list = false;
    std::uint32_t host_jobs = 1;

    sim::OptionParser opts(
        "golden_stats",
        "Run one fixed-seed torture configuration and write its full "
        "stats tree as JSON for golden-file comparison.");
    opts.addString("case", &case_name, "configuration name (--list)");
    opts.addString("out", &out_file,
                   "output JSON file (- for stdout)");
    opts.addFlag("list", &list, "print the known case names");
    opts.addUint32("host-jobs", &host_jobs,
                   "host worker threads (output must be identical)");
    opts.parseOrExit(argc, argv);

    if (list) {
        for (const GoldenCase &gc : kGoldenCases)
            std::printf("%s\n", gc.name);
        return 0;
    }

    const GoldenCase *chosen = nullptr;
    for (const GoldenCase &gc : kGoldenCases) {
        if (case_name == gc.name)
            chosen = &gc;
    }
    if (chosen == nullptr) {
        std::fprintf(stderr,
                     "golden_stats: unknown --case '%s' (try --list)\n",
                     case_name.c_str());
        return 2;
    }

    SystemConfig cfg = goldenCaseConfig(*chosen);
    cfg.hostJobs = host_jobs == 0 ? 1 : host_jobs;
    System sys(cfg);
    const RunResults r = sys.run();

    if (out_file.empty() || out_file == "-") {
        writeGoldenJson(std::cout, *chosen, r, sys);
    } else {
        std::ofstream out(out_file);
        if (!out) {
            std::fprintf(stderr, "golden_stats: cannot open '%s'\n",
                         out_file.c_str());
            return 1;
        }
        writeGoldenJson(out, *chosen, r, sys);
    }
    return 0;
}
