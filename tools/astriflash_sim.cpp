/**
 * @file
 * astriflash_sim — the command-line front end.
 *
 * Runs any of the seven §V-B configurations on any workload with
 * overridable parameters and dumps the full statistics a study needs.
 *
 *   astriflash_sim --config=astriflash --workload=silo --cores=8 \
 *                  --dataset-gib=2 --dram-ratio=0.03 --jobs=20000 \
 *                  --load=0.8 --footprint --seed=3 \
 *                  --stats-json=stats.json --trace=miss.jsonl
 *
 * Run with --help for the flag list. Beyond the human-readable report,
 * --stats-json=FILE writes the full hierarchical component statistics
 * tree as JSON and --trace=FILE records the miss-lifecycle event ring
 * as JSONL (see DESIGN.md for both schemas).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/json.hh"
#include "sim/option_parser.hh"
#include "sim/trace_events.hh"

#include "core/fabric_options.hh"
#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

bool
parseKind(const std::string &s, SystemKind *out)
{
    if (s == "dram")
        *out = SystemKind::DramOnly;
    else if (s == "astriflash")
        *out = SystemKind::AstriFlash;
    else if (s == "ideal")
        *out = SystemKind::AstriFlashIdeal;
    else if (s == "nops")
        *out = SystemKind::AstriFlashNoPS;
    else if (s == "nodp")
        *out = SystemKind::AstriFlashNoDP;
    else if (s == "osswap")
        *out = SystemKind::OsSwap;
    else if (s == "flashsync")
        *out = SystemKind::FlashSync;
    else
        return false;
    return true;
}

bool
parseWorkload(const std::string &s, workload::Kind *out)
{
    for (workload::Kind k : workload::kAllKinds) {
        if (s == workload::kindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

/** Write config + headline results + the full stats tree as JSON. */
void
writeStatsJson(std::ostream &os, const SystemConfig &cfg,
               double dataset_gib, const RunResults &r,
               const System &sys)
{
    sim::JsonWriter w(os);
    w.beginObject();

    w.key("config");
    w.beginObject();
    w.field("kind", systemKindName(cfg.kind));
    w.field("workload", workload::kindName(cfg.workloadKind));
    w.field("cores", cfg.cores);
    w.field("dataset_gib", dataset_gib);
    w.field("dram_ratio", cfg.dramCacheRatio);
    w.field("seed", cfg.seed);
    w.endObject();

    w.key("results");
    w.beginObject();
    w.field("jobs", r.jobs);
    w.field("throughput_jobs_per_sec", r.throughputJobsPerSec);
    w.field("avg_service_us", r.avgServiceUs());
    w.field("p50_service_us", r.serviceUs(0.50));
    w.field("p99_service_us", r.serviceUs(0.99));
    w.field("p999_service_us", r.serviceUs(0.999));
    w.field("avg_response_us", r.avgResponseUs());
    w.field("p99_response_us", r.responseUs(0.99));
    w.field("dram_cache_hit_ratio", r.dramCacheHitRatio);
    w.field("avg_exec_between_misses_us", r.avgExecBetweenMissesUs);
    w.field("flash_reads", r.flashReads);
    w.field("flash_writes", r.flashWrites);
    w.field("gc_blocked_reads", r.gcBlockedReads);
    w.field("shootdowns", r.shootdowns);
    w.field("peak_outstanding_misses", r.peakOutstandingMisses);
    w.endObject();

    w.key("stats");
    sys.statsRegistry().writeJson(w);

    w.endObject();
    os << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.measureJobs = 8000;
    cfg.warmupJobs = 0;
    double dataset_gib = 1.0;
    double load = 0.0;
    std::uint64_t switch_ns = 0;
    std::string stats_json;
    std::string trace_file;
    std::uint64_t trace_cap = 1 << 20;
    bool dump_stats = false;

    sim::OptionParser opts(
        "astriflash_sim",
        "Run one AstriFlash system configuration and report "
        "throughput and latency statistics.");
    opts.addCustom("config", "NAME",
                   "dram|astriflash|ideal|nops|nodp|osswap|flashsync",
                   [&](const std::string &v) {
                       return parseKind(v, &cfg.kind);
                   });
    opts.addCustom("workload", "NAME",
                   "arrayswap|rbt|hashtable|tatp|tpcc|silo|masstree",
                   [&](const std::string &v) {
                       return parseWorkload(v, &cfg.workloadKind);
                   });
    opts.addUint32("cores", &cfg.cores, "number of simulated cores");
    opts.addDouble("dataset-gib", &dataset_gib, "dataset size in GiB");
    opts.addDouble("dram-ratio", &cfg.dramCacheRatio,
                   "DRAM cache / dataset ratio");
    opts.addUint("jobs", &cfg.measureJobs, "measured jobs");
    opts.addUint("warmup", &cfg.warmupJobs,
                 "warmup jobs (default jobs/10)");
    opts.addDouble("load", &load,
                   "open-loop load fraction of this config's "
                   "closed-loop max (0 = closed loop)");
    opts.addUint("switch-ns", &switch_ns,
                 "thread-switch cost override in ns");
    opts.addUint32("pending-cap", &cfg.sched.pendingCap,
                   "pending-queue bound");
    opts.addFlag("footprint", &cfg.dramCache.footprintEnabled,
                 "enable footprint-cache mode");
    bool no_fp_bit = false;
    opts.addFlag("no-fp-bit", &no_fp_bit,
                 "disable the forward-progress bit");
    opts.addUint("seed", &cfg.seed, "RNG seed");
    opts.addString("stats-json", &stats_json,
                   "write the full stats tree as JSON to FILE "
                   "(- for stdout)");
    opts.addFlag("stats", &dump_stats,
                 "dump the stats tree as text after the report");
    opts.addString("trace", &trace_file,
                   "record miss-lifecycle events as JSONL to FILE");
    opts.addUint("trace-cap", &trace_cap,
                 "trace ring capacity in events");
    FabricOptions fabric;
    fabric.addTo(opts);
    opts.parseOrExit(argc, argv);
    fabric.apply(cfg);

    if (no_fp_bit)
        cfg.forwardProgressBit = false;
    if (switch_ns > 0)
        cfg.threadSwitch = sim::nanoseconds(switch_ns);
    cfg.workload.datasetBytes =
        static_cast<std::uint64_t>(dataset_gib * (1ull << 30));
    if (cfg.warmupJobs == 0)
        cfg.warmupJobs = cfg.measureJobs / 10 + 1;

    if (load > 0.0) {
        // Calibrate the open-loop arrival rate against this
        // configuration's own closed-loop maximum.
        SystemConfig probe = cfg;
        probe.measureJobs = cfg.measureJobs / 2 + 1;
        System ref(probe);
        const double max_thr = ref.run().throughputJobsPerSec;
        cfg.meanInterarrival =
            static_cast<sim::Ticks>(1e12 / (load * max_thr));
        std::printf("open loop: %.0f%% of closed-loop max "
                    "(%.0f jobs/s)\n",
                    load * 100, max_thr);
    }

    if (!trace_file.empty())
        sim::Tracer::instance().enable(
            static_cast<std::size_t>(trace_cap));

    System sys(cfg);
    const RunResults r = sys.run();

    std::printf("== %s / %s / %u cores / %.2f GiB dataset / %.1f%% "
                "DRAM ==\n",
                systemKindName(cfg.kind),
                workload::kindName(cfg.workloadKind), cfg.cores,
                dataset_gib, cfg.dramCacheRatio * 100);
    std::printf("jobs measured          %llu\n",
                static_cast<unsigned long long>(r.jobs));
    std::printf("throughput             %.0f jobs/s\n",
                r.throughputJobsPerSec);
    std::printf("service  avg/p50/p99   %.1f / %.1f / %.1f us\n",
                r.avgServiceUs(), r.serviceUs(0.50), r.serviceUs(0.99));
    if (cfg.meanInterarrival > 0) {
        std::printf("response avg/p99       %.1f / %.1f us\n",
                    r.avgResponseUs(), r.responseUs(0.99));
    }
    std::printf("exec between misses    %.1f us (paper target "
                "5-25)\n",
                r.avgExecBetweenMissesUs);
    std::printf("dram-cache hit ratio   %.2f%%\n",
                100.0 * r.dramCacheHitRatio);
    std::printf("flash reads/writes     %llu / %llu\n",
                static_cast<unsigned long long>(r.flashReads),
                static_cast<unsigned long long>(r.flashWrites));
    std::printf("gc-blocked reads       %llu\n",
                static_cast<unsigned long long>(r.gcBlockedReads));
    std::printf("peak outstanding miss  %llu\n",
                static_cast<unsigned long long>(
                    r.peakOutstandingMisses));
    if (r.shootdowns) {
        std::printf("tlb shootdowns         %llu\n",
                    static_cast<unsigned long long>(r.shootdowns));
    }
    if (auto *dc = sys.dramCache()) {
        std::printf("flash refill bytes     %.2f MB"
                    " (sub-page misses %llu)\n",
                    static_cast<double>(
                        dc->bcTotals().flashBytesRead) / 1e6,
                    static_cast<unsigned long long>(
                        dc->fcStats().subPageMisses.value()));
        std::printf("msr peak occupancy     %llu / %llu"
                    " (%u bc shard%s)\n",
                    static_cast<unsigned long long>(
                        dc->msrPeakOccupancy()),
                    static_cast<unsigned long long>(
                        dc->msrCapacity()),
                    dc->shardCount(),
                    dc->shardCount() == 1 ? "" : "s");
    }
    std::printf("flash write amp        %.2f, wear spread %u "
                "(%u %s device%s)\n",
                sys.flash().writeAmplification(),
                sys.flash().wearSpread(), sys.flash().deviceCount(),
                flash::backendKindName(sys.flash().backendKind()),
                sys.flash().deviceCount() == 1 ? "" : "s");

    if (dump_stats)
        std::fputs(sys.statsRegistry().dump().c_str(), stdout);

    if (!stats_json.empty()) {
        if (stats_json == "-") {
            writeStatsJson(std::cout, cfg, dataset_gib, r, sys);
        } else {
            std::ofstream out(stats_json);
            if (!out) {
                std::fprintf(stderr,
                             "astriflash_sim: cannot open '%s'\n",
                             stats_json.c_str());
                return 1;
            }
            writeStatsJson(out, cfg, dataset_gib, r, sys);
        }
    }

    if (!trace_file.empty()) {
        auto &tracer = sim::Tracer::instance();
        std::ofstream out(trace_file);
        if (!out) {
            std::fprintf(stderr, "astriflash_sim: cannot open '%s'\n",
                         trace_file.c_str());
            return 1;
        }
        tracer.writeJsonl(out);
        std::printf("trace: %llu events recorded (%llu dropped) -> "
                    "%s\n",
                    static_cast<unsigned long long>(tracer.emitted()),
                    static_cast<unsigned long long>(tracer.dropped()),
                    trace_file.c_str());
        tracer.disable();
    }
    return 0;
}
