/**
 * @file
 * astriflash_sim — the command-line front end.
 *
 * Runs any of the seven §V-B configurations on any workload with
 * overridable parameters and dumps the full statistics a study needs.
 *
 *   astriflash_sim --config=astriflash --workload=silo --cores=8 \
 *                  --dataset-gib=2 --dram-ratio=0.03 --jobs=20000 \
 *                  --load=0.8 --footprint --seed=3
 *
 * Flags (all optional):
 *   --config=NAME       dram|astriflash|ideal|nops|nodp|osswap|flashsync
 *   --workload=NAME     arrayswap|rbt|hashtable|tatp|tpcc|silo|masstree
 *   --cores=N           default 4
 *   --dataset-gib=F     default 1.0
 *   --dram-ratio=F      DRAM cache / dataset, default 0.03
 *   --jobs=N            measured jobs, default 8000
 *   --warmup=N          warmup jobs, default jobs/10
 *   --load=F            open-loop load as a fraction of this
 *                       config's own closed-loop max (0 = closed loop)
 *   --switch-ns=N       thread-switch cost override
 *   --pending-cap=N     pending-queue bound
 *   --footprint         enable footprint-cache mode
 *   --no-fp-bit         disable the forward-progress bit
 *   --seed=N            RNG seed
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

bool
flagValue(const char *arg, const char *name, std::string *out)
{
    const std::size_t n = std::strlen(name);
    if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
        *out = arg + n + 1;
        return true;
    }
    return false;
}

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "astriflash_sim: %s (see --help in the file "
                         "header)\n", msg);
    std::exit(2);
}

SystemKind
parseKind(const std::string &s)
{
    if (s == "dram")
        return SystemKind::DramOnly;
    if (s == "astriflash")
        return SystemKind::AstriFlash;
    if (s == "ideal")
        return SystemKind::AstriFlashIdeal;
    if (s == "nops")
        return SystemKind::AstriFlashNoPS;
    if (s == "nodp")
        return SystemKind::AstriFlashNoDP;
    if (s == "osswap")
        return SystemKind::OsSwap;
    if (s == "flashsync")
        return SystemKind::FlashSync;
    usage(("unknown config '" + s + "'").c_str());
}

workload::Kind
parseWorkload(const std::string &s)
{
    for (workload::Kind k : workload::kAllKinds) {
        if (s == workload::kindName(k))
            return k;
    }
    usage(("unknown workload '" + s + "'").c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.measureJobs = 8000;
    cfg.warmupJobs = 0;
    double dataset_gib = 1.0;
    double load = 0.0;

    for (int i = 1; i < argc; ++i) {
        std::string v;
        if (flagValue(argv[i], "--config", &v))
            cfg.kind = parseKind(v);
        else if (flagValue(argv[i], "--workload", &v))
            cfg.workloadKind = parseWorkload(v);
        else if (flagValue(argv[i], "--cores", &v))
            cfg.cores = static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (flagValue(argv[i], "--dataset-gib", &v))
            dataset_gib = std::atof(v.c_str());
        else if (flagValue(argv[i], "--dram-ratio", &v))
            cfg.dramCacheRatio = std::atof(v.c_str());
        else if (flagValue(argv[i], "--jobs", &v))
            cfg.measureJobs =
                static_cast<std::uint64_t>(std::atoll(v.c_str()));
        else if (flagValue(argv[i], "--warmup", &v))
            cfg.warmupJobs =
                static_cast<std::uint64_t>(std::atoll(v.c_str()));
        else if (flagValue(argv[i], "--load", &v))
            load = std::atof(v.c_str());
        else if (flagValue(argv[i], "--switch-ns", &v))
            cfg.threadSwitch = sim::nanoseconds(
                static_cast<std::uint64_t>(std::atoll(v.c_str())));
        else if (flagValue(argv[i], "--pending-cap", &v))
            cfg.sched.pendingCap =
                static_cast<std::uint32_t>(std::atoi(v.c_str()));
        else if (flagValue(argv[i], "--seed", &v))
            cfg.seed =
                static_cast<std::uint64_t>(std::atoll(v.c_str()));
        else if (!std::strcmp(argv[i], "--footprint"))
            cfg.dramCache.footprintEnabled = true;
        else if (!std::strcmp(argv[i], "--no-fp-bit"))
            cfg.forwardProgressBit = false;
        else
            usage((std::string("unknown flag '") + argv[i] + "'")
                      .c_str());
    }
    cfg.workload.datasetBytes =
        static_cast<std::uint64_t>(dataset_gib * (1ull << 30));
    if (cfg.warmupJobs == 0)
        cfg.warmupJobs = cfg.measureJobs / 10 + 1;

    if (load > 0.0) {
        // Calibrate the open-loop arrival rate against this
        // configuration's own closed-loop maximum.
        SystemConfig probe = cfg;
        probe.measureJobs = cfg.measureJobs / 2 + 1;
        System ref(probe);
        const double max_thr = ref.run().throughputJobsPerSec;
        cfg.meanInterarrival =
            static_cast<sim::Ticks>(1e12 / (load * max_thr));
        std::printf("open loop: %.0f%% of closed-loop max "
                    "(%.0f jobs/s)\n",
                    load * 100, max_thr);
    }

    System sys(cfg);
    const RunResults r = sys.run();

    std::printf("== %s / %s / %u cores / %.2f GiB dataset / %.1f%% "
                "DRAM ==\n",
                systemKindName(cfg.kind),
                workload::kindName(cfg.workloadKind), cfg.cores,
                dataset_gib, cfg.dramCacheRatio * 100);
    std::printf("jobs measured          %llu\n",
                static_cast<unsigned long long>(r.jobs));
    std::printf("throughput             %.0f jobs/s\n",
                r.throughputJobsPerSec);
    std::printf("service  avg/p50/p99   %.1f / %.1f / %.1f us\n",
                r.avgServiceUs, r.p50ServiceUs, r.p99ServiceUs);
    if (cfg.meanInterarrival > 0) {
        std::printf("response avg/p99       %.1f / %.1f us\n",
                    r.avgResponseUs, r.p99ResponseUs);
    }
    std::printf("exec between misses    %.1f us (paper target "
                "5-25)\n",
                r.avgExecBetweenMissesUs);
    std::printf("dram-cache hit ratio   %.2f%%\n",
                100.0 * r.dramCacheHitRatio);
    std::printf("flash reads/writes     %llu / %llu\n",
                static_cast<unsigned long long>(r.flashReads),
                static_cast<unsigned long long>(r.flashWrites));
    std::printf("gc-blocked reads       %llu\n",
                static_cast<unsigned long long>(r.gcBlockedReads));
    std::printf("peak outstanding miss  %llu\n",
                static_cast<unsigned long long>(
                    r.peakOutstandingMisses));
    if (r.shootdowns) {
        std::printf("tlb shootdowns         %llu\n",
                    static_cast<unsigned long long>(r.shootdowns));
    }
    if (auto *dc = sys.dramCache()) {
        std::printf("flash refill bytes     %.2f MB"
                    " (sub-page misses %llu)\n",
                    static_cast<double>(
                        dc->stats().flashBytesRead.value()) / 1e6,
                    static_cast<unsigned long long>(
                        dc->stats().subPageMisses.value()));
        std::printf("msr peak occupancy     %llu / %u\n",
                    static_cast<unsigned long long>(
                        dc->msr().stats().peakOccupancy),
                    dc->msr().capacity());
    }
    std::printf("flash write amp        %.2f, erase spread %u\n",
                sys.flash().ftl().stats().writeAmplification(),
                sys.flash().ftl().eraseCountSpread());
    return 0;
}
