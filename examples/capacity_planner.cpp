/**
 * @file
 * Capacity planner: the §II-A sizing exercise as a tool.
 *
 * Given a dataset size, a tail-latency budget and a core count, sweep
 * the DRAM-to-flash ratio, report the miss ratio, the flash bandwidth
 * demand (Equation 1), the memory cost relative to an all-DRAM
 * deployment (flash is ~50x cheaper per byte), and whether a PCIe
 * Gen5 x16 link (~128 GB/s) can feed the misses.
 *
 * Usage: capacity_planner [dataset_gib] [cores] [workload]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mem/set_assoc_cache.hh"
#include "workload/workload.hh"

using namespace astriflash;

namespace {

constexpr double kDramCostPerGb = 1.0;  // relative units
constexpr double kFlashCostPerGb = 0.02; // 50x cheaper (§I)
constexpr double kPcieGen5GBps = 128.0;

double
measureMissRatio(workload::Kind kind, std::uint64_t dataset,
                 double ratio)
{
    workload::WorkloadConfig wc;
    wc.datasetBytes = dataset;
    wc.seed = 5;
    workload::Workload gen(kind, wc);
    const std::uint64_t cap = static_cast<std::uint64_t>(
        static_cast<double>(dataset) * ratio);
    mem::SetAssocCache cache(
        "dc", cap / (8 * 4096) * 8 * 4096, 4096, 8);
    const std::uint64_t frames = cache.capacity() / 4096;
    std::uint64_t warm = 0;
    while (cache.validLines() < frames && warm < 20'000'000) {
        const auto job = gen.nextJob();
        for (const auto &op : job.ops) {
            if (op.type == workload::Op::Type::Compute)
                continue;
            if (!cache.access(op.addr))
                cache.fill(op.addr);
            ++warm;
        }
    }
    cache.stats().hits.reset();
    cache.stats().misses.reset();
    for (int j = 0; j < 3000; ++j) {
        const auto job = gen.nextJob();
        for (const auto &op : job.ops) {
            if (op.type == workload::Op::Type::Compute)
                continue;
            if (!cache.access(op.addr))
                cache.fill(op.addr);
        }
    }
    return cache.stats().missRatio();
}

} // namespace

int
main(int argc, char **argv)
{
    const double dataset_gib = argc > 1 ? std::atof(argv[1]) : 4.0;
    const unsigned cores = argc > 2 ? std::atoi(argv[2]) : 64;
    workload::Kind kind = workload::Kind::Tatp;
    if (argc > 3) {
        for (workload::Kind k : workload::kAllKinds) {
            if (std::strcmp(argv[3], workload::kindName(k)) == 0)
                kind = k;
        }
    }
    const auto dataset = static_cast<std::uint64_t>(
        dataset_gib * (1ull << 30));

    std::printf("AstriFlash capacity planner\n");
    std::printf("dataset %.1f GiB, %u cores, workload %s\n\n",
                dataset_gib, cores, workload::kindName(kind));
    std::printf("%-10s %-10s %-14s %-14s %-12s %-8s\n", "DRAM%",
                "miss%", "flash GB/s", "vs PCIe5 x16", "cost vs",
                "fits?");
    std::printf("%-10s %-10s %-14s %-14s %-12s %-8s\n", "", "", "",
                "", "all-DRAM", "");

    for (double ratio : {0.01, 0.02, 0.03, 0.04, 0.06, 0.10}) {
        const double miss = measureMissRatio(kind, dataset, ratio);
        // Equation 1 aggregated over all cores.
        const double bw =
            0.5e9 / 64.0 * miss * 4096.0 * cores / 1e9;
        const double cost =
            (ratio * kDramCostPerGb + kFlashCostPerGb) /
            kDramCostPerGb;
        std::printf("%-10.1f %-10.2f %-14.1f %-14.0f%% %-12.3f %-8s\n",
                    ratio * 100, miss * 100, bw,
                    100.0 * bw / kPcieGen5GBps, cost,
                    bw <= kPcieGen5GBps ? "yes" : "NO");
    }
    std::printf("\nPaper's pick: 3%% DRAM => ~20x memory-cost "
                "reduction with PCIe headroom (§II-A).\n");
    return 0;
}
