/**
 * @file
 * User-level threading demo: a miniature AstriFlash server loop built
 * on the real cooperative threading library (§IV-D).
 *
 * Worker threads process "requests"; whenever a request touches cold
 * data it blocks on a page key (the software analog of the
 * hardware-triggered switch-on-miss). The main loop plays the
 * backside controller: when the scheduler runs out of runnable
 * threads it waits out the simulated 50 µs flash delay and notifies
 * the arrived pages — exactly the notification mechanism of §IV-D2.
 *
 * The same request stream runs under the priority+aging scheduler and
 * under FIFO (the noPS ablation): FIFO drains every new request
 * before resuming any blocked one, so the blocked requests' latency
 * balloons — the effect Table II quantifies at ~7x p99.
 */

#include <chrono>
#include <cstdio>
#include <deque>
#include <vector>

#include "sim/rng.hh"
#include "uthread/uthread.hh"

using namespace astriflash;
using namespace astriflash::uthread;
using Clock = std::chrono::steady_clock;

namespace {

struct Result {
    double avgUs = 0;
    double maxMissedUs = 0; ///< Worst latency among missing requests.
    std::uint64_t switches = 0;
    std::uint64_t agingPromotions = 0;
};

Result
runServer(Policy policy)
{
    Config cfg;
    cfg.policy = policy;
    cfg.agingThreshold = std::chrono::microseconds(30);
    UScheduler sched(cfg);
    sim::Rng rng(11);

    constexpr int kRequests = 400;
    std::vector<Clock::time_point> start(kRequests);
    std::vector<double> latency_us(kRequests, 0);
    std::vector<bool> missed(kRequests, false);

    // "Flash": page keys become ready 50 us after the miss.
    struct Pending {
        std::uint64_t key;
        Clock::time_point ready;
    };
    std::deque<Pending> flash;
    int live = kRequests;

    for (int r = 0; r < kRequests; ++r) {
        const bool misses = rng.chance(0.4);
        missed[r] = misses;
        sched.spawn([&, r, misses] {
            start[r] = Clock::now();
            volatile int sink = 0;
            for (int i = 0; i < 20000; ++i)
                sink = sink + i;
            if (misses) {
                const std::uint64_t key = 0x1000 + r;
                flash.push_back(
                    {key, Clock::now() +
                              std::chrono::microseconds(50)});
                sched.blockOn(key); // switch-on-miss
            }
            for (int i = 0; i < 20000; ++i)
                sink = sink + i;
            latency_us[r] =
                std::chrono::duration<double, std::micro>(
                    Clock::now() - start[r])
                    .count();
            --live;
        });
    }

    // Main loop = backside controller interleaved with small
    // scheduling quanta (§IV-D2's queue-pair notifications): pages
    // arrive *while* new requests are still executing, which is what
    // lets FIFO starve the pending queue.
    while (live > 0) {
        const std::uint32_t ran = sched.runSlice(2);
        if (ran == 0 && !flash.empty()) {
            // Nothing runnable: wait out the oldest flash access.
            while (Clock::now() < flash.front().ready) {
            }
        }
        while (!flash.empty() &&
               flash.front().ready <= Clock::now()) {
            sched.notify(flash.front().key);
            flash.pop_front();
        }
    }

    Result res;
    double sum = 0;
    for (int r = 0; r < kRequests; ++r) {
        sum += latency_us[r];
        if (missed[r] && latency_us[r] > res.maxMissedUs)
            res.maxMissedUs = latency_us[r];
    }
    res.avgUs = sum / kRequests;
    res.switches = sched.stats().switches;
    res.agingPromotions = sched.stats().agingPromotions;
    return res;
}

} // namespace

int
main()
{
    std::printf("AstriFlash user-level threading demo: 400 requests, "
                "40%% touch cold data (50 us 'flash')\n\n");
    const Result prio = runServer(Policy::PriorityAging);
    const Result fifo = runServer(Policy::Fifo);

    std::printf("%-16s %-12s %-18s %-10s %-8s\n", "scheduler",
                "avg us", "worst missed us", "switches", "aged");
    std::printf("%-16s %-12.1f %-18.1f %-10llu %-8llu\n",
                "priority+aging", prio.avgUs, prio.maxMissedUs,
                static_cast<unsigned long long>(prio.switches),
                static_cast<unsigned long long>(
                    prio.agingPromotions));
    std::printf("%-16s %-12.1f %-18.1f %-10llu %-8llu\n", "fifo",
                fifo.avgUs, fifo.maxMissedUs,
                static_cast<unsigned long long>(fifo.switches),
                static_cast<unsigned long long>(
                    fifo.agingPromotions));
    std::printf("\nFIFO drains every new request before resuming a "
                "blocked one, so requests that\nmissed wait far "
                "longer; priority+aging resumes them once their page "
                "arrived.\n");
    return 0;
}
