/**
 * @file
 * Tail-latency explorer: load an AstriFlash (or baseline) system with
 * open-loop Poisson arrivals and print the latency distribution — the
 * experiment an operator would run to find the knee of the
 * latency-throughput curve for their SLO.
 *
 * Usage: tail_latency_explorer [config] [workload] [load%]
 *   config:   astriflash|dram|ossswap|flashsync (default astriflash)
 *   workload: one of the seven (default tatp)
 *   load%:    percent of the DRAM-only max throughput (default 80)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/system.hh"

using namespace astriflash;
using namespace astriflash::core;

namespace {

SystemConfig
baseCfg(SystemKind kind, workload::Kind wl)
{
    SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = 4;
    cfg.workloadKind = wl;
    cfg.workload.datasetBytes = 1ull << 30;
    cfg.warmupJobs = 500;
    cfg.measureJobs = 6000;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    SystemKind kind = SystemKind::AstriFlash;
    if (argc > 1) {
        if (!std::strcmp(argv[1], "dram"))
            kind = SystemKind::DramOnly;
        else if (!std::strcmp(argv[1], "osswap"))
            kind = SystemKind::OsSwap;
        else if (!std::strcmp(argv[1], "flashsync"))
            kind = SystemKind::FlashSync;
    }
    workload::Kind wl = workload::Kind::Tatp;
    if (argc > 2) {
        for (workload::Kind k : workload::kAllKinds) {
            if (!std::strcmp(argv[2], workload::kindName(k)))
                wl = k;
        }
    }
    const double load = argc > 3 ? std::atof(argv[3]) / 100.0 : 0.8;

    // Reference: the DRAM-only closed-loop maximum.
    double dram_max = 0;
    {
        System sys(baseCfg(SystemKind::DramOnly, wl));
        dram_max = sys.run().throughputJobsPerSec;
    }

    SystemConfig cfg = baseCfg(kind, wl);
    cfg.meanInterarrival =
        static_cast<sim::Ticks>(1e12 / (load * dram_max));
    System sys(cfg);
    const auto r = sys.run();

    std::printf("config=%s workload=%s target-load=%.0f%% of "
                "DRAM-only max (%.0f jobs/s)\n\n",
                systemKindName(kind), workload::kindName(wl),
                load * 100, dram_max);
    std::printf("achieved throughput  %10.0f jobs/s (%.0f%%)\n",
                r.throughputJobsPerSec,
                100.0 * r.throughputJobsPerSec / dram_max);
    std::printf("service   avg/p50/p99/p99.9  %7.1f %7.1f %7.1f "
                "%7.1f us\n",
                r.avgServiceUs(), r.serviceUs(0.50), r.serviceUs(0.99),
                r.serviceUs(0.999));
    std::printf("response  avg/p99            %7.1f %15.1f us\n",
                r.avgResponseUs(), r.responseUs(0.99));
    std::printf("dram-cache hit ratio  %5.1f%%   outstanding misses "
                "peak %llu\n",
                100.0 * r.dramCacheHitRatio,
                static_cast<unsigned long long>(
                    r.peakOutstandingMisses));
    std::printf("flash reads/writes    %llu / %llu  (gc-blocked "
                "%llu)\n",
                static_cast<unsigned long long>(r.flashReads),
                static_cast<unsigned long long>(r.flashWrites),
                static_cast<unsigned long long>(r.gcBlockedReads));
    if (r.shootdowns) {
        std::printf("TLB shootdowns        %llu\n",
                    static_cast<unsigned long long>(r.shootdowns));
    }
    return 0;
}
