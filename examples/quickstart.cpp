/**
 * @file
 * Quickstart: build an AstriFlash system, run a workload, print the
 * headline metrics, and compare against the DRAM-only ideal.
 *
 * Usage: quickstart [workload] [cores]
 *   workload: arrayswap|rbt|hashtable|tatp|tpcc|silo|masstree
 *             (default tatp)
 *   cores:    default 4
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/system.hh"

using namespace astriflash;

namespace {

workload::Kind
parseWorkload(const char *s)
{
    for (workload::Kind k : workload::kAllKinds) {
        if (std::strcmp(s, workload::kindName(k)) == 0)
            return k;
    }
    std::fprintf(stderr, "unknown workload '%s', using tatp\n", s);
    return workload::Kind::Tatp;
}

core::RunResults
runOne(core::SystemKind kind, workload::Kind wl, std::uint32_t cores)
{
    core::SystemConfig cfg;
    cfg.kind = kind;
    cfg.cores = cores;
    cfg.workloadKind = wl;
    cfg.workload.datasetBytes = std::uint64_t{1} << 30; // 1 GB scaled
    cfg.warmupJobs = 500;
    cfg.measureJobs = 4000;
    core::System system(cfg);
    return system.run();
}

} // namespace

int
main(int argc, char **argv)
{
    const workload::Kind wl =
        argc > 1 ? parseWorkload(argv[1]) : workload::Kind::Tatp;
    const std::uint32_t cores =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;

    std::printf("AstriFlash quickstart: workload=%s cores=%u "
                "dataset=1GiB dram-cache=3%%\n\n",
                workload::kindName(wl), cores);

    const auto ideal = runOne(core::SystemKind::DramOnly, wl, cores);
    const auto astri = runOne(core::SystemKind::AstriFlash, wl, cores);

    auto row = [](const char *name, const core::RunResults &r,
                  double norm) {
        std::printf("%-12s %10.0f jobs/s (%.0f%% of DRAM-only)  "
                    "avg svc %6.1f us  p99 svc %7.1f us  "
                    "dc-hit %4.1f%%\n",
                    name, r.throughputJobsPerSec,
                    100.0 * r.throughputJobsPerSec / norm,
                    r.avgServiceUs(), r.serviceUs(0.99),
                    100.0 * r.dramCacheHitRatio);
    };

    row("DRAM-only", ideal, ideal.throughputJobsPerSec);
    row("AstriFlash", astri, ideal.throughputJobsPerSec);

    std::printf("\nCalibration: exec between DRAM-cache misses "
                "%.1f us (paper target 5-25 us)\n",
                astri.avgExecBetweenMissesUs);
    std::printf("Flash reads %llu, writes %llu, peak outstanding "
                "misses %llu\n",
                static_cast<unsigned long long>(astri.flashReads),
                static_cast<unsigned long long>(astri.flashWrites),
                static_cast<unsigned long long>(
                    astri.peakOutstandingMisses));
    return 0;
}
